package rfsrv

// This file is the striped cluster client: one rfsrv.Client that
// shards file data across several servers, each reached through its
// own Session. It is the repository's answer to the single-link
// ceiling PR 2 ran into — one server's 250 MB/s link caps aggregate
// throughput no matter how deep the window — and the first step toward
// the ROADMAP's aggregate-capacity north star.
//
// Layout. File bytes are split into fixed-size stripes (64 KiB by
// default) placed round-robin: stripe k of every file lives on server
// k mod N, *at its global offset* (server files are sparse — each
// server's copy holds only the stripes it owns, with its local size
// covering the bytes it has seen). Reads and writes split into
// per-server contiguous runs, issue in parallel through each server's
// session window, and merge completions through the existing
// seq-tagged demux — the cluster adds no new wire mechanism.
//
// Metadata. The namespace is replicated: every mutation (create,
// mkdir, unlink, rmdir, truncate, extend) fans out to all servers in
// server order, and because the backing filesystems allocate inode
// numbers deterministically, the same mutation stream yields the same
// inode numbers everywhere (the cluster verifies this and reports
// divergence as an I/O error). Read-only metadata (lookup, getattr,
// readdir) is served by a single *home* server chosen by hashing the
// path component (directory inode + name) or the inode, spreading
// metadata load without a directory service.
//
// Size coherence (DESIGN.md §9). A write's tail may land away from a
// file's metadata home, leaving the home's (and other data servers')
// local size short of the true end of file. After each synchronous
// Write that extends a file, the cluster replays a grow-only OpSetSize
// to every other server, so any server's local size — and thus any
// homed getattr, and the EOF clipping of any striped read — reflects
// the true size. The inode's path-hashed home server is the size
// authority, and the caching that elides repeat reconciliations is
// *validated*: every server keeps a per-inode size epoch (bumped by
// exact size sets, which always fan out; never by data writes or
// grow reconciliation, so epochs stay replicated-identical), every
// reply carries the epoch of the inode it resolves, and the cluster
// caches (size, epoch) pairs. A reply whose epoch differs from the
// cached one proves a foreign client truncated the file: the entry is
// invalidated on the spot and the next overwrite re-reconciles —
// which is what makes truncate-then-overwrite coherent across
// clients (TestClusterCrossClientExtend). OpSetSize itself carries
// the writer's observed epoch, so a server refuses (StStale) to
// re-grow sizes under a writer whose view is stale instead of
// resurrecting a foreign truncate; the refusal carries the
// authoritative (size, epoch) and the cluster revalidates and
// retries. Asynchronous StartWrite still skips reconciliation (its
// callers, like ORFS write-behind, track EOF themselves and publish
// it through SetFileSize at their sync barrier); the
// metadata-home-vs-data-server tests pin down what is and is not
// guaranteed.
//
// Ordering and failure semantics. A Cluster is used from one simulated
// process at a time, like the Session it is built from. Metadata
// travels on each server's synchronous control path, never a window
// slot, so it can always proceed while striped data operations hold
// every slot (the cluster analogue of the session's one-free-slot
// discipline). Operations return when every fanned-out part has
// completed; the first error wins and the rest are drained, so window
// slots never leak. A striped
// read's byte count is the contiguous prefix served before the first
// server-clipped (EOF) part; bytes past it are undefined, exactly like
// a short read on the plain protocol.
//
// Replication and faults. A cluster built with NewReplicatedCluster
// writes every stripe to R consecutive servers (stripe k lands on
// k mod N through (k mod N)+R-1, wrapping), so the loss of any single
// server with R >= 2 loses no data. Faults are what the transport
// reports as such (fabric.IsFault: a dead peer at send time, or — with
// Session.SetRequestTimeout armed — a reply deadline expiring): the
// faulting server is recorded as *excluded* and never addressed again,
// reads of its stripes fail over to the next alive replica, writes
// succeed as long as every run keeps one clean replica, and namespace
// mutations simply skip it instead of reporting divergence. Exclusion
// is one-way — an operator who knows the server recovered calls
// Reinstate, which refuses to re-admit a server that missed namespace
// mutations (the caller must resync its backing store out of band
// first) and drops exactly the size-cache entries established during
// the server's exclusion — the ones whose reconciliation fans skipped
// it — so the next write to an affected file replays the grow-only
// OpSetSize reconciliation.
// Application-level errors (EEXIST, EOF clipping, short writes) are
// never treated as faults and fail the operation exactly as before.
// With R=1 and no faults every path below is bit-identical to the
// pre-replication cluster.
//
// With one server the cluster degenerates exactly: every stripe is one
// contiguous run on server 0, every metadata route resolves to server
// 0, and no reconciliation traffic is sent, so the issued RPC sequence
// — and therefore the simulated timing — is bit-identical to driving
// the underlying Session directly (guarded by
// TestClusterOneServerMatchesSession).

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// DefaultStripeSize is the stripe width used when NewCluster is given
// none: 64 KiB, the application chunk size of the scalability suites
// (so one figure-harness read maps to exactly one stripe).
const DefaultStripeSize = 64 * 1024

// ErrBadStripe rejects a stripe width that is not a positive
// page-aligned multiple no larger than MaxWriteChunk. Constructors
// wrap it with the offending value; errors.Is(err, ErrBadStripe)
// identifies the class.
var ErrBadStripe = errors.New("rfsrv: invalid stripe width")

// LayoutPolicy selects how a cluster client classifies files into
// stripe-layout classes (DESIGN.md §10). The zero value (and a cluster
// that never calls SetLayoutPolicy) treats every file as
// LayoutStandard and issues exactly the pre-layout RPC sequence —
// the bit-identity guarantee every existing figure rests on.
//
// All clients of one namespace must run the same policy, like mount
// options: placement is client-computed, so a policy-free client
// reading a whole-on-home file another client created would look for
// stripes on servers that never saw the data.
type LayoutPolicy struct {
	// Adaptive classifies unhinted creates as LayoutWhole and promotes
	// a whole file to LayoutStandard (migrating its bytes) when a write
	// or published size reaches past PromoteThreshold.
	Adaptive bool
}

// Cluster stripes file data across several rfsrv servers, one Session
// per server, and replicates the namespace to all of them. It
// implements Client and Async, so every consumer of a Session — ORFS
// mounts, the ORFA library, the figures harness — runs over a server
// cluster unchanged.
type Cluster struct {
	sessions []*Session
	stripe   int64
	node     *hw.Node

	// replicas is the replication factor R: every stripe is written to
	// R consecutive servers. 1 (NewCluster's choice) stripes without
	// redundancy.
	replicas int

	// down marks servers excluded after an observed transport fault;
	// excluded servers are skipped by every path until Reinstate.
	down []bool

	// nsEpochs counts, PER SERVER, the namespace-and-size mutations
	// this client directed at it (create/mkdir/unlink/rmdir, renames
	// and exact size sets) — mutations an excluded server misses
	// unrecoverably. A replicated cluster bumps every server's count on
	// each mutation (including excluded ones: a down server that missed
	// a fanned mutation must be refused Reinstate, so the bump may
	// never skip it); a sharded cluster bumps only the mutated
	// directory's owner group, which is what lets a server whose owned
	// slice stayed quiet reinstate while foreign slices churned. downNs
	// snapshots a server's count at exclusion time, so Reinstate can
	// tell whether the server's slice diverged while it was out.
	nsEpochs []uint64
	downNs   []uint64

	// sharded routes namespace mutations to per-directory owner groups
	// instead of fanning them to every server (EnableShardedNamespace;
	// DESIGN.md §11). Data striping and size coherence are unchanged.
	sharded bool

	// pubBatch, when positive, defers the grow-only size publishes of
	// the write path: instead of fanning an OpSetSize after every
	// extending write, the cluster coalesces the highest pending
	// end-of-file per inode (pendPub, flushed in pendOrder insertion
	// order for determinism) and flushes them — plus the lazy OpScrub
	// fan for unlinked inodes (pendScrub) — in one combined batch per
	// server once pubSince reaches pubBatch, or at the next metadata
	// operation, whichever comes first (SetSizePublishBatch,
	// FlushSizes). Zero keeps the per-write reconciliation fan and the
	// bit-identical default path.
	pubBatch  int
	pubSince  int
	pendPub   map[kernel.InodeID]int64
	pendOrder []kernel.InodeID
	pendScrub []kernel.InodeID

	// flush scratch (FlushSizes is the amortized per-write path, so it
	// reuses cluster-owned slices instead of allocating per flush).
	flushReqStore []Req
	flushReqs     []*Req
	flushStarts   []int
	flushFlights  []*batchFlight
	flushTargets  []int
	flushResps    []*Resp

	// sizes caches, per inode, the highest end-of-file this client has
	// established on every alive server, together with the size epoch
	// that view was valid under. Overwrites below the cached size skip
	// the OpSetSize reconciliation round; any reply carrying a
	// different epoch invalidates the entry (validated caching — see
	// the package comment on size coherence).
	sizes map[kernel.InodeID]sizeEntry

	// policy is the layout policy (SetLayoutPolicy); policyOn gates the
	// whole per-file layout machinery, so a policy-free cluster never
	// consults or populates the layout cache and stays bit-identical to
	// the pre-layout client.
	policy   LayoutPolicy
	policyOn bool

	// layouts caches each inode's layout class as learned from create
	// hints, OpSetLayout fans and reply nibbles (observeResp). Only
	// populated under an enabled policy. Entries ride the same
	// validated-cache discipline as sizes: a layout change bumps the
	// size epoch, so stale placement is caught by the epoch check.
	layouts map[kernel.InodeID]LayoutClass

	// migVA is the lazily mapped staging buffer promotions copy through
	// (one MaxWriteChunk region in sessions[0]'s buffer space).
	migVA vm.VirtAddr

	// Promotions counts whole-on-home files migrated to standard
	// striping (Bytes carries the migrated volume).
	Promotions sim.Counter

	// reusable per-operation scratch (a Cluster is used from one
	// simulated process at a time, and no data-path operation re-enters
	// another, so one set per cluster suffices — see the zero-alloc
	// notes in DESIGN.md §10).
	runScratch    []run
	needScratch   []int
	partFree      []*part
	syncParts     []*part
	coverScratch  []bool
	flightScratch []syncMetaFlight
	targetScratch []int
	tailScratch   []int
	fanReq        Req

	// StripeReads and StripeWrites count data bytes issued per
	// direction; MetaFanout counts replicated metadata requests beyond
	// the first server; SetSizes counts OpSetSize reconciliation
	// requests.
	StripeReads, StripeWrites, MetaFanout, SetSizes sim.Counter

	// Failovers counts operations re-routed to a replica after a fault
	// (Bytes carries the re-read data volume); Excluded counts servers
	// marked down.
	Failovers, Excluded sim.Counter

	// Reinstates counts servers readmitted by Reinstate;
	// ReinstateRefusals counts readmissions that could not replay the
	// resync journal and fell back to a full-slice resync (or, with no
	// resync peers wired, were refused outright); RenameInDoubts
	// counts sharded cross-owner renames that surfaced
	// ErrRenameInDoubt. The torture harness (internal/torture)
	// consumes all three to cross-check its fault schedule against
	// what the cluster actually observed.
	Reinstates, ReinstateRefusals, RenameInDoubts sim.Counter

	// Elastic membership (DESIGN.md §13). members maps placement
	// position → session slot: every placement function ((ino−2) mod N
	// owner groups, k mod N..+R−1 stripe replica sets, metadata
	// homing) indexes this slice, so membership changes re-place data
	// and metadata without touching the construction-time sessions
	// array. down/nsEpochs/downNs/journals stay slot-indexed — a
	// server's fault state is independent of where placement puts it.
	members []int

	// view is the shared membership view this cluster follows (nil for
	// a construction-time-fixed cluster); viewEpoch is the epoch of
	// the members slice currently adopted. staleMember latches when a
	// reply's membership epoch proves a viewless cluster's fixed
	// membership is outdated — every subsequent operation fails with
	// ErrStaleMembership.
	view        *MemberView
	viewEpoch   uint64
	staleMember bool

	// Operation-gate state (see enterOp): gateDepth tracks nested
	// cluster entry points (Rename inside Meta), so only the outermost
	// one fences and counts; gateMut/gateCounted remember what the
	// outermost entry registered with the view.
	gateDepth   int
	gateMut     bool
	gateCounted bool

	// journals holds one resync journal per excluded server slot (nil
	// while a server is up, reset at exclusion), recording the
	// mutations and data-stripe writes the server misses so Reinstate
	// can replay them. journalOpCap/journalByteCap bound journal
	// growth (0 selects the defaults); past either bound the journal
	// spills and Reinstate falls back to a full-slice resync through
	// peers (SetResyncPeers).
	journals       []*resyncJournal
	journalOpCap   int
	journalByteCap int64
	peers          []*Server

	// renameDoubt parks unresolved in-doubt renames, keyed by each
	// directory involved, so the next lookup/getattr/readdir walking
	// either directory re-drives the rename before reading
	// (resolveRenameDoubt).
	renameDoubt map[kernel.InodeID]inDoubtRename

	// ResyncOps counts journaled mutations replayed by Reinstate;
	// ResyncBytes counts data bytes re-copied to a returning server
	// (journal replay and full-slice resync both); ResyncSpills counts
	// journals that overflowed their bounds and fell back to
	// full-slice resync; ResyncFallbacks counts journal replays that
	// abandoned the batched fast path for the serial one because a
	// status needed a verification lookup (the server already held a
	// prefix of the journal); Migrated counts data bytes re-placed by
	// membership changes (Join/Retire/Bounce); RenameAutoResolves
	// counts in-doubt renames resolved by a later walk over the marked
	// entry rather than an explicit re-drive.
	ResyncOps, ResyncBytes, ResyncSpills, ResyncFallbacks, Migrated, RenameAutoResolves sim.Counter
}

// NewCluster builds a striped cluster client over one Session per
// server. All sessions must live on the same client node and use
// distinct local endpoints (replies are demultiplexed by (seq,
// endpoint), so shared endpoints would cross-scatter). stripe is the
// stripe width in bytes — 0 selects DefaultStripeSize; it must be
// page-aligned (so page-granular consumers never split a page across
// servers) and at most MaxWriteChunk (so one stripe is one request).
func NewCluster(p *sim.Proc, sessions []*Session, stripe int) (*Cluster, error) {
	return NewReplicatedCluster(p, sessions, stripe, 1)
}

// NewReplicatedCluster is NewCluster with a replication factor: every
// stripe is written to replicas consecutive servers (1 <= replicas <=
// len(sessions)), reads prefer the stripe's primary and fail over to a
// replica when the primary's transport reports a fault, and replicas=1
// degenerates bit-identically to NewCluster. See the package comment
// on replication and faults.
func NewReplicatedCluster(p *sim.Proc, sessions []*Session, stripe, replicas int) (*Cluster, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("rfsrv: cluster needs at least one session")
	}
	if len(sessions) > 64 {
		// The size cache stamps each entry with the exclusion set as a
		// 64-bit mask (sizeEntry.downAt).
		return nil, fmt.Errorf("rfsrv: cluster supports at most 64 servers, got %d", len(sessions))
	}
	if replicas < 1 || replicas > len(sessions) {
		return nil, fmt.Errorf("rfsrv: replication factor %d outside 1..%d", replicas, len(sessions))
	}
	if stripe == 0 {
		stripe = DefaultStripeSize
	}
	if err := ValidateStripe(int64(stripe)); err != nil {
		return nil, err
	}
	node := sessions[0].Node()
	eps := make(map[uint8]bool)
	for _, s := range sessions {
		if s.Node() != node {
			return nil, fmt.Errorf("rfsrv: cluster sessions must share one client node")
		}
		ep := s.Client().myEP
		if eps[ep] {
			return nil, fmt.Errorf("rfsrv: cluster sessions share local endpoint %d", ep)
		}
		eps[ep] = true
	}
	members := make([]int, len(sessions))
	for i := range members {
		members[i] = i
	}
	return &Cluster{
		sessions: sessions,
		stripe:   int64(stripe),
		node:     node,
		replicas: replicas,
		down:     make([]bool, len(sessions)),
		nsEpochs: make([]uint64, len(sessions)),
		downNs:   make([]uint64, len(sessions)),
		sizes:    make(map[kernel.InodeID]sizeEntry),
		members:  members,
	}, nil
}

// ValidateStripe checks a stripe width: positive, page-aligned (so
// page-granular consumers never split a page across servers) and at
// most MaxWriteChunk (so one stripe is one request). Violations wrap
// ErrBadStripe.
func ValidateStripe(stripe int64) error {
	if stripe <= 0 || stripe%mem.PageSize != 0 {
		return fmt.Errorf("%w: %d is not a positive page multiple", ErrBadStripe, stripe)
	}
	if stripe > MaxWriteChunk {
		return fmt.Errorf("%w: %d exceeds one %d-byte request", ErrBadStripe, stripe, MaxWriteChunk)
	}
	return nil
}

// SetLayoutPolicy enables per-file layout classification (DESIGN.md
// §10). Call it once, right after construction and before any traffic:
// placement decisions are cached per inode, so flipping the policy on
// a cluster that already served files would strand their data. Every
// client of the namespace must run the same policy (see LayoutPolicy).
//
// On a one-server cluster the policy is accepted but inert: every
// class degenerates to the same single run on server 0, and keeping
// the machinery off preserves the bit-identity-with-a-plain-Session
// guarantee under every policy.
//
// Mutually exclusive with the sharded namespace: a cluster running
// EnableShardedNamespace returns ErrShardLayoutConflict (sharding
// reuses the create request's Len field, which is where layout hints
// travel — see DESIGN.md §11 and the ROADMAP composition follow-up).
func (cl *Cluster) SetLayoutPolicy(pol LayoutPolicy) error {
	if cl.sharded {
		return fmt.Errorf("%w: EnableShardedNamespace is already on", ErrShardLayoutConflict)
	}
	cl.policy = pol
	cl.policyOn = len(cl.sessions) > 1
	if cl.policyOn && cl.layouts == nil {
		cl.layouts = make(map[kernel.InodeID]LayoutClass)
	}
	return nil
}

// LayoutPolicy returns the active policy and whether the layout
// machinery is engaged (false for policy-free and one-server clusters).
func (cl *Cluster) LayoutPolicy() (LayoutPolicy, bool) { return cl.policy, cl.policyOn }

// LayoutOf reports the layout class this client would use for the
// inode right now: the cached class, or LayoutStandard when the
// machinery is off or the inode has not been resolved yet (tests,
// stats; the data path uses layoutFor, which fetches unknown inodes).
func (cl *Cluster) LayoutOf(ino kernel.InodeID) LayoutClass { return cl.layoutCached(ino) }

// sizeEntry is one validated size-cache record: every alive server's
// local size for the inode is at least size, established while the
// inode's size epoch was epoch. The entry is dropped the moment any
// reply carries a different epoch. downAt records which servers were
// excluded when the entry was (last) established — exactly the
// servers its reconciliation fan skipped, and therefore exactly the
// entries Reinstate must drop when one of them returns.
type sizeEntry struct {
	size   int64
	epoch  uint64
	downAt uint64 // bitmask of servers excluded at establishment
}

// downBits snapshots the current exclusion set as an entry's downAt
// bitmask (the session count is capped at 64 by the constructor).
func (cl *Cluster) downBits() uint64 {
	var m uint64
	for i, d := range cl.down {
		if d {
			m |= 1 << i
		}
	}
	return m
}

// entry builds a size-cache record stamped with the current exclusion
// set.
func (cl *Cluster) entry(size int64, epoch uint64) sizeEntry {
	return sizeEntry{size: size, epoch: epoch, downAt: cl.downBits()}
}

// observeResp feeds one server reply into the validated size cache:
// the epoch it carries either confirms the cached entry for the inode
// it resolves, or proves a foreign exact size set ran — in which case
// the cached size floor is reset to zero (forcing the next overwrite
// to re-reconcile) under the freshly observed epoch. Adoption is
// strictly newest-wins: epochs only ever advance (exact sets bump,
// inodes are never reused), so an OLDER reply epoch proves the
// replying server — not the cache — is stale: it was excluded in some
// client's view while that client ran an exact set. Adopting its
// epoch would corrupt the cache backward and make every size-fan
// retry loop ping-pong between the divergent members' epochs forever;
// instead the fans detect the lagging member with epochBehind and
// exclude it. Replies that resolve no inode are ignored.
func (cl *Cluster) observeResp(resp *Resp) {
	if resp == nil {
		return
	}
	if resp.MemberEpoch > cl.viewEpoch && cl.view == nil {
		// The reply is stamped with a membership epoch this cluster has
		// never seen and — with no attached view — can never adopt. It
		// poisons itself (ErrStaleMembership from the next entry gate)
		// rather than keep routing by a retired geometry.
		cl.staleMember = true
	}
	if resp.Attr.Ino == 0 {
		return
	}
	if resp.Status != StOK && resp.Status != StStale {
		return
	}
	ino := resp.Attr.Ino
	e, ok := cl.sizes[ino]
	if !ok || resp.Epoch > e.epoch {
		cl.sizes[ino] = cl.entry(0, resp.Epoch)
	}
	if cl.policyOn {
		// Every reply teaches the layout cache alongside the size cache;
		// with the policy off the nibble is ignored and the map stays
		// empty (no per-reply map cost on the default path).
		cl.layouts[ino] = resp.Layout
	}
}

// epochBehind reports whether a reply proves the replying server
// missed an exact size set this client already observed: its epoch
// for the resolved inode is strictly behind the cached one. Such a
// server's size state is incoherent (it was down, in the truncating
// client's view, when the epoch advanced — and grow publishes are
// epoch-checked precisely so it cannot silently resurrect the
// pre-truncate size). No single observed epoch satisfies a group
// whose members disagree, so retrying a refused fan against it can
// never converge: the caller must exclude the lagging member and let
// the coherent survivors carry the group.
func (cl *Cluster) epochBehind(resp *Resp) bool {
	if resp == nil || resp.Attr.Ino == 0 {
		return false
	}
	e, ok := cl.sizes[resp.Attr.Ino]
	return ok && resp.Epoch < e.epoch
}

// NumServers returns the number of servers data is striped across —
// the current member count, which membership changes move.
func (cl *Cluster) NumServers() int { return len(cl.members) }

// Replicas returns the replication factor R.
func (cl *Cluster) Replicas() int { return cl.replicas }

// StripeSize returns the standard-layout stripe width in bytes. The
// return type matches the internal int64 arithmetic (offsets and
// stripe indices are 64-bit); LayoutWide files stripe at
// WideStripeSize and LayoutWhole files do not stripe at all.
func (cl *Cluster) StripeSize() int64 { return cl.stripe }

// DownServers returns the indices of servers currently excluded after
// an observed fault, in server order.
func (cl *Cluster) DownServers() []int {
	var out []int
	for i, d := range cl.down {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Reinstate lives in elastic.go (DESIGN.md §13): it replays the
// resync journal recorded during the exclusion — or rebuilds the
// server's slice in full when the journal spilled — before clearing
// the exclusion and dropping the size-cache entries established
// while the server was out.

// markDown records a server as excluded after an observed fault,
// snapshotting the mutation epoch and resetting the slot's resync
// journal: everything the server misses from here on is recorded for
// Reinstate to replay.
func (cl *Cluster) markDown(i int) {
	if !cl.down[i] {
		cl.down[i] = true
		cl.downNs[i] = cl.nsEpochs[i]
		cl.resetJournal(i)
		cl.Excluded.Add(0)
	}
}

// aliveCount returns the number of members not excluded (standby
// slots are never addressed, so they do not count).
func (cl *Cluster) aliveCount() int {
	n := 0
	for _, i := range cl.members {
		if !cl.down[i] {
			n++
		}
	}
	return n
}

// Sessions returns the per-server sessions in server order (stats,
// tests).
func (cl *Cluster) Sessions() []*Session { return cl.sessions }

// Node implements Async: the client node.
func (cl *Cluster) Node() *hw.Node { return cl.node }

// Window implements Async: the aggregate window over all servers.
func (cl *Cluster) Window() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.Window()
	}
	return n
}

// InFlight implements Async: outstanding requests over all servers.
func (cl *Cluster) InFlight() int {
	n := 0
	for _, s := range cl.sessions {
		n += s.InFlight()
	}
	return n
}

// CanStart implements Async: whether a data operation on ino covering
// [off, off+n) could issue right now without blocking on window slots
// held by OTHER operations. It checks, per server, that the window has
// room for the range's runs — capped at the window size, because an
// operation needing more same-server slots than the window exists
// makes progress by retiring its own earlier runs (see StartRead), so
// what it requires from the caller is only that everyone else's slots
// are free. With replication the count covers every alive replica
// target of each run (what a write needs; reads need only one, so the
// answer is conservative — callers retire a little earlier, never
// deadlock). Per-file layouts made slot demand inode-dependent — a
// whole-on-home file needs one slot on its home where a striped file
// spreads — which is why CanStart takes the inode; it consults only
// the layout cache (never the wire), so an unresolved inode is paced
// as standard and corrected by the first reply.
func (cl *Cluster) CanStart(ino kernel.InodeID, off int64, n int) bool {
	if cap(cl.needScratch) < len(cl.sessions) {
		cl.needScratch = make([]int, len(cl.sessions))
	}
	need := cl.needScratch[:len(cl.sessions)]
	for i := range need {
		need[i] = 0
	}
	for _, r := range cl.runs(cl.layoutCached(ino), ino, off, n) {
		for j := 0; j < cl.replicas; j++ {
			if idx := cl.members[(r.owner+j)%len(cl.members)]; !cl.down[idx] {
				need[idx]++
			}
		}
	}
	for i, s := range cl.sessions {
		if need[i] == 0 {
			continue
		}
		if need[i] > s.Window() {
			need[i] = s.Window()
		}
		if s.InFlight()+need[i] > s.Window() {
			return false
		}
	}
	return true
}

// ---- placement ----

// mix is the splitmix64 finalizer: a cheap, well-distributed hash for
// home-server selection.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerIdx returns the placement POSITION owning the standard-layout
// stripe containing off (the primary — replicas follow on the next
// R-1 positions, wrapping). Positions index cl.members; session slots
// come out of that map, so membership changes re-place stripes by
// editing members alone.
func (cl *Cluster) ownerIdx(off int64) int {
	return int((off / cl.stripe) % int64(len(cl.members)))
}

// wholeHome returns the fixed data owner of a whole-on-home file: the
// same hash homeIdx routes the inode's metadata to, so ONE server
// answers both getattr and every byte of the file — the point of the
// class. Unlike homeIdx it does not walk past excluded servers
// (placement is fixed; reads fail over across the replica set instead).
func (cl *Cluster) wholeHome(ino kernel.InodeID) int {
	return int(mix(uint64(ino)) % uint64(len(cl.members)))
}

// ownerAt returns the primary data server for byte off of an inode
// under its layout class (replicas follow on the next R-1 servers,
// wrapping, for every class).
func (cl *Cluster) ownerAt(lay LayoutClass, ino kernel.InodeID, off int64) int {
	switch lay {
	case LayoutWhole:
		return cl.wholeHome(ino)
	case LayoutWide:
		return int((off / WideStripeSize) % int64(len(cl.members)))
	default:
		return cl.ownerIdx(off)
	}
}

// readIdx returns the preferred read target for byte off of an inode
// under its layout, as a session slot: the primary when alive, else
// the first alive replica, else -1.
func (cl *Cluster) readIdx(lay LayoutClass, ino kernel.InodeID, off int64) int {
	owner := cl.ownerAt(lay, ino, off)
	n := len(cl.members)
	for j := 0; j < cl.replicas; j++ {
		if k := cl.members[(owner+j)%n]; !cl.down[k] {
			return k
		}
	}
	return -1
}

// layoutCached returns the inode's cached layout class without
// traffic: LayoutStandard when the policy machinery is off or the
// inode has not been resolved yet.
func (cl *Cluster) layoutCached(ino kernel.InodeID) LayoutClass {
	if !cl.policyOn {
		return LayoutStandard
	}
	return cl.layouts[ino]
}

// layoutFor resolves the layout class a data operation must use. With
// the policy on, an inode this client has never resolved costs one
// homed getattr on the control path (the reply teaches both caches);
// every create, lookup or prior data reply already populated the cache
// for the normal open-then-read lifecycle, so the fetch is rare.
func (cl *Cluster) layoutFor(p *sim.Proc, ino kernel.InodeID) (LayoutClass, error) {
	if !cl.policyOn {
		return LayoutStandard, nil
	}
	if lc, ok := cl.layouts[ino]; ok {
		return lc, nil
	}
	resp, err := cl.homedMeta(p, &Req{Op: OpGetattr, Ino: ino}, func() int { return cl.homeIdx(ino) })
	if err != nil {
		return LayoutStandard, err
	}
	return resp.Layout, nil
}

// aliveFrom returns the session slot of the first non-excluded member
// at or cyclically after position i, or -1 when every member is
// excluded.
func (cl *Cluster) aliveFrom(i int) int {
	n := len(cl.members)
	for j := 0; j < n; j++ {
		if k := cl.members[(i+j)%n]; !cl.down[k] {
			return k
		}
	}
	return -1
}

// homeIdx returns the metadata home of an inode: the hashed server, or
// the next alive one when the hashed home is excluded.
func (cl *Cluster) homeIdx(ino kernel.InodeID) int {
	return cl.aliveFrom(int(mix(uint64(ino)) % uint64(len(cl.members))))
}

// pathHomeIdx returns the metadata home of a path component: the hash
// chains the directory's inode with the name (FNV-1a over the
// component), so sibling entries spread across servers. Excluded homes
// re-route to the next alive server, like homeIdx.
func (cl *Cluster) pathHomeIdx(dir kernel.InodeID, name string) int {
	h := mix(uint64(dir))
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return cl.aliveFrom(int(h % uint64(len(cl.members))))
}

// allReplicasDown is the error for a stripe whose every replica is
// excluded; it satisfies fabric.IsFault.
func (cl *Cluster) allReplicasDown(off int64) error {
	return fmt.Errorf("rfsrv: stripe at %d: all %d replicas excluded: %w",
		off, cl.replicas, fabric.ErrPeerDead)
}

// withReplica is the shared issue-time failover policy: run op against
// the preferred replica of the byte at off under the inode's layout,
// excluding each target whose transport faults and retrying on the
// next alive replica; a non-fault error returns as produced. bytes is
// the data volume recorded per failover (0 for metadata-sized
// operations).
func withReplica[T any](cl *Cluster, lay LayoutClass, ino kernel.InodeID, off int64, bytes int, op func(idx int) (T, error)) (T, error) {
	for {
		idx := cl.readIdx(lay, ino, off)
		if idx < 0 {
			var zero T
			return zero, cl.allReplicasDown(off)
		}
		v, err := op(idx)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(bytes)
			continue
		}
		return v, err
	}
}

// degenerate runs a zero-length data operation against the offset's
// preferred replica, with the shared issue-time failover policy.
func (cl *Cluster) degenerate(p *sim.Proc, lay LayoutClass, ino kernel.InodeID, off int64, op func(idx int) (*Resp, error)) (*Resp, error) {
	resp, err := withReplica(cl, lay, ino, off, 0, op)
	if resp == nil && err != nil {
		resp = &Resp{Status: StatusOf(err)}
	}
	cl.observeResp(resp)
	return resp, err
}

// OwnerServer returns the index of the server owning the stripe that
// contains byte offset off (stats, tests, placement-aware callers).
// The primary owner is reported even when that server is excluded
// (reads would route to a replica; see DownServers).
func (cl *Cluster) OwnerServer(off int64) int { return cl.ownerIdx(off) }

// HomeServer returns the index of the metadata home of an inode. The
// home shifts past excluded servers, so the answer changes as faults
// are observed; it is -1 only when every server is excluded.
func (cl *Cluster) HomeServer(ino kernel.InodeID) int { return cl.homeIdx(ino) }

// run is one contiguous byte range owned by a single server.
type run struct {
	owner int
	off   int64 // global file offset
	n     int
}

// runs splits [off, off+n) of an inode into maximal contiguous
// same-owner ranges under its layout class, in offset order. A
// whole-on-home file (and any file on a one-server cluster) is a
// single run; striped files get one run per stripe fragment.
//
// The returned slice is the cluster's per-operation scratch: valid
// until the next runs call, so callers that outlive their own issue
// loop (StartRead/StartWrite pendings) must copy it.
func (cl *Cluster) runs(lay LayoutClass, ino kernel.InodeID, off int64, n int) []run {
	out := cl.runScratch[:0]
	if lay == LayoutWhole {
		out = append(out, run{owner: cl.wholeHome(ino), off: off, n: n})
		cl.runScratch = out
		return out
	}
	width := cl.stripe
	if lay == LayoutWide {
		width = WideStripeSize
	}
	end := off + int64(n)
	for off < end {
		owner := cl.ownerAt(lay, ino, off)
		cur := off
		for cur < end {
			stripeEnd := (cur/width + 1) * width
			if stripeEnd >= end {
				cur = end
				break
			}
			cur = stripeEnd
			if cl.ownerAt(lay, ino, cur) != owner {
				break
			}
		}
		out = append(out, run{owner: owner, off: off, n: int(cur - off)})
		off = cur
	}
	cl.runScratch = out
	return out
}

// ---- data path ----

// part is one per-server request of a striped operation.
type part struct {
	pd     *Pending
	r      run
	want   int         // expected byte count (writes)
	ridx   int         // index of the run this part belongs to
	target int         // server the request was issued to
	vec    core.Vector // destination slice (reads: kept for failover reissue)
	resp   *Resp
	err    error
	done   bool
}

// retire waits the part once and memoizes its outcome.
func (pt *part) retire(p *sim.Proc) {
	if pt.done {
		return
	}
	pt.resp, pt.err = pt.pd.Wait(p)
	pt.done = true
}

// getPart returns a recycled (zeroed) part from the freelist. Parts
// never escape the cluster — synchronous operations recycle at return,
// pendings at Wait — so the freelist turns the per-run allocation of
// the striped hot path into a steady-state zero.
func (cl *Cluster) getPart() *part {
	if n := len(cl.partFree); n > 0 {
		pt := cl.partFree[n-1]
		cl.partFree = cl.partFree[:n-1]
		*pt = part{}
		return pt
	}
	return &part{}
}

// putParts returns retired parts to the freelist. Callers must drop
// every reference first (results are merged into fresh Resps before
// any part is recycled).
func (cl *Cluster) putParts(parts []*part) {
	cl.partFree = append(cl.partFree, parts...)
}

// makeRoom retires outstanding parts oldest-first until session s can
// accept one more request — the cross-server analogue of Session's
// window backpressure. parts complete out of order on the wire, so
// waiting the oldest always makes progress.
func makeRoom(p *sim.Proc, s *Session, parts []*part) {
	for _, pt := range parts {
		if s.InFlight() < s.Window() {
			return
		}
		pt.retire(p)
	}
}

// mergeAttr picks the authoritative attributes out of per-server
// responses: the largest size wins (a data server that holds the tail
// stripe knows more of the file than one that does not).
func mergeAttr(parts []*part) kernel.Attr {
	var attr kernel.Attr
	for _, pt := range parts {
		if pt.resp != nil && (attr.Ino == 0 || pt.resp.Attr.Size > attr.Size) {
			attr = pt.resp.Attr
		}
	}
	return attr
}

// firstError returns the first per-server failure in offset order.
func firstError(parts []*part) error {
	for _, pt := range parts {
		if pt.err != nil {
			return pt.err
		}
	}
	return nil
}

// firstAppError returns the first non-fault failure in offset order —
// application-level errors always abort, while transport faults are
// the replication layer's to absorb.
func firstAppError(parts []*part) error {
	for _, pt := range parts {
		if pt.err != nil && !fabric.IsFault(pt.err) {
			return pt.err
		}
	}
	return nil
}

// issueRead starts one run's read on the preferred replica under the
// inode's layout, failing over synchronously when the transport
// rejects the send (dead peer). parts are this operation's earlier
// issues, retired by makeRoom when the target's window is full.
func (cl *Cluster) issueRead(p *sim.Proc, lay LayoutClass, ino kernel.InodeID, r run, vec core.Vector, parts []*part) (*part, error) {
	return withReplica(cl, lay, ino, r.off, r.n, func(idx int) (*part, error) {
		s := cl.sessions[idx]
		makeRoom(p, s, parts)
		pd, err := s.startRead(p, ino, r.off, vec)
		if err != nil {
			return nil, err
		}
		cl.StripeReads.Add(r.n)
		pt := cl.getPart()
		pt.pd, pt.r, pt.target, pt.vec = pd, r, idx, vec
		return pt, nil
	})
}

// failoverReads retries, in offset order, every read part that failed
// with a transport fault, re-reading it from the next alive replica
// under the inode's layout (the faulting server is excluded first).
// Retries travel the replica's synchronous control path — NOT a window
// slot: failover runs inside some PendingOp.Wait, while the caller's
// other unretired pendings may legitimately hold every slot of the
// surviving servers, so a slot-bound retry could deadlock against its
// own pipeline. A part whose every replica is excluded keeps its fault
// error.
func (cl *Cluster) failoverReads(p *sim.Proc, lay LayoutClass, ino kernel.InodeID, parts []*part) {
	for _, pt := range parts {
		for pt.err != nil && fabric.IsFault(pt.err) {
			cl.markDown(pt.target)
			idx := cl.readIdx(lay, ino, pt.r.off)
			if idx < 0 {
				break // every replica gone; the fault stands
			}
			cl.Failovers.Add(pt.r.n)
			pt.target = idx
			pt.resp, pt.err = cl.sessions[idx].Client().Read(p, ino, pt.r.off, pt.vec)
			if pt.err == nil {
				cl.StripeReads.Add(pt.r.n)
			}
		}
	}
}

// Read implements Client: the range splits into per-server runs issued
// in parallel through each server's window; data lands directly in the
// caller's vector (each run scatters into its own slice of dst, so
// striping adds no copies). The merged byte count is the contiguous
// prefix before the first server-clipped (EOF) run. A run whose target
// faults is re-read from the stripe's next alive replica; only a run
// with no replicas left fails the read.
func (cl *Cluster) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	if err := cl.enterOp(p, false); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	defer cl.exitOp()
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	lay, lerr := cl.layoutFor(p, ino)
	if lerr != nil {
		return &Resp{Status: StatusOf(lerr)}, lerr
	}
	total := dst.TotalLen()
	if total == 0 {
		// Degenerate read: one attr-only round trip to the offset's
		// preferred replica, failing over like any other data path.
		return cl.degenerate(p, lay, ino, off, func(idx int) (*Resp, error) {
			return cl.sessions[idx].Read(p, ino, off, dst)
		})
	}
	parts := cl.syncParts[:0]
	defer func() {
		cl.putParts(parts)
		cl.syncParts = parts[:0]
	}()
	for _, r := range cl.runs(lay, ino, off, total) {
		pt, err := cl.issueRead(p, lay, ino, r, dst.Slice(int(r.off-off), r.n), parts)
		if err != nil {
			drainParts(p, parts)
			return &Resp{Status: StatusOf(err)}, err
		}
		parts = append(parts, pt)
	}
	for _, pt := range parts {
		pt.retire(p)
	}
	cl.failoverReads(p, lay, ino, parts)
	for _, pt := range parts {
		cl.observeResp(pt.resp)
	}
	if err := firstError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	return mergeRead(parts), nil
}

// mergeRead folds per-run read responses into one: byte count is the
// contiguous prefix, attributes are the authoritative merge.
func mergeRead(parts []*part) *Resp {
	n := 0
	for _, pt := range parts {
		n += int(pt.resp.N)
		if int(pt.resp.N) < pt.r.n {
			break // EOF inside this run; later runs are past the end
		}
	}
	return &Resp{Status: StOK, Attr: mergeAttr(parts), Epoch: mergeEpoch(parts), N: uint32(n)}
}

// mergeEpoch picks the newest size epoch out of per-server responses
// (they agree except mid-race with a foreign exact size set, where the
// newest is the one to revalidate against).
func mergeEpoch(parts []*part) uint64 {
	var e uint64
	for _, pt := range parts {
		if pt.resp != nil && pt.resp.Epoch > e {
			e = pt.resp.Epoch
		}
	}
	return e
}

// drainParts retires every part, discarding results — the error path.
// Without it an early return would leak window slots.
func drainParts(p *sim.Proc, parts []*part) {
	for _, pt := range parts {
		pt.retire(p)
	}
}

// Write implements Client: runs are chunked at MaxWriteChunk and
// pipelined across the per-server windows — each run to its primary
// and, with replication, to the next R-1 alive servers; after a write
// that extends the file, grow-only OpSetSize requests reconcile every
// other server's local size (see the package comment on size
// reconciliation). A replica that faults mid-write is excluded; the
// write succeeds as long as every run kept at least one clean replica.
func (cl *Cluster) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	if err := cl.enterOp(p, false); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	defer cl.exitOp()
	if off < 0 {
		return &Resp{Status: StInval}, ErrInval
	}
	total := src.TotalLen()
	lay, lerr := cl.layoutFor(p, ino)
	if lerr != nil {
		return &Resp{Status: StatusOf(lerr)}, lerr
	}
	if total == 0 {
		// Degenerate write: like the degenerate read, with failover.
		return cl.degenerate(p, lay, ino, off, func(idx int) (*Resp, error) {
			return cl.sessions[idx].Write(p, ino, off, src)
		})
	}
	if lay, lerr = cl.maybePromote(p, ino, lay, off+int64(total)); lerr != nil {
		return &Resp{Status: StatusOf(lerr)}, lerr
	}
	runs := cl.runs(lay, ino, off, total)
	parts := cl.syncParts[:0]
	defer func() {
		cl.putParts(parts)
		cl.syncParts = parts[:0]
	}()
	fail := func(err error) (*Resp, error) {
		drainParts(p, parts)
		return &Resp{Status: StatusOf(err)}, err
	}
	tailTargets := cl.tailScratch[:0]
	defer func() { cl.tailScratch = tailTargets[:0] }()
	for ri, r := range runs {
		live := 0
		tail := ri == len(runs)-1
		for j := 0; j < cl.replicas; j++ {
			idx := cl.members[(r.owner+j)%len(cl.members)]
			if cl.down[idx] {
				continue
			}
			s := cl.sessions[idx]
			faulted := false
			// Runs longer than one request (a merged single-server range
			// or a wide stripe) chunk exactly like Session.Write does.
			for done := 0; done < r.n; {
				chunk := r.n - done
				if chunk > MaxWriteChunk {
					chunk = MaxWriteChunk
				}
				makeRoom(p, s, parts)
				at := r.off + int64(done)
				pd, err := s.startWrite(p, ino, at, src.Slice(int(at-off), chunk))
				if err != nil {
					if fabric.IsFault(err) {
						cl.markDown(idx)
						faulted = true
						break // this replica is lost; others may carry the run
					}
					return fail(err)
				}
				cl.StripeWrites.Add(chunk)
				pt := cl.getPart()
				pt.pd, pt.r = pd, run{owner: r.owner, off: at, n: chunk}
				pt.want, pt.ridx, pt.target = chunk, ri, idx
				parts = append(parts, pt)
				done += chunk
			}
			if !faulted {
				live++
				if tail {
					tailTargets = append(tailTargets, idx)
				}
			}
		}
		if live == 0 {
			return fail(cl.allReplicasDown(r.off))
		}
	}
	for _, pt := range parts {
		pt.retire(p)
	}
	resp, err := cl.finishWriteParts(ino, runs, parts, total)
	if err != nil {
		return resp, err
	}
	if v := cl.view; v != nil && v.migrating {
		v.logWrite(ino, off, total)
	}
	// Feed the data replies' size epochs into the validated cache
	// BEFORE deciding whether to reconcile: a foreign truncate since
	// this client's last reconciliation resets the cached floor here,
	// which is exactly what forces setSizeTo to re-run for an overwrite
	// below the stale cached size.
	for _, pt := range parts {
		cl.observeResp(pt.resp)
	}
	if cl.pubBatch > 0 && lay != LayoutWhole && len(cl.members) > 1 {
		// Batched publish mode: enqueue the new end instead of fanning
		// an OpSetSize now; the coalesced batch flushes at the publish
		// window or the next metadata operation. Every part retired
		// above, so a window-triggered flush never contends with this
		// write's own slots.
		if err := cl.enqueueSizePub(p, ino, off+int64(total)); err != nil {
			return &Resp{Status: StatusOf(err)}, err
		}
	} else if err := cl.setSizeTo(p, lay, ino, off+int64(total), tailTargets); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return resp, nil
}

// finishWriteParts is the shared epilogue of the two replicated write
// paths (Cluster.Write and clusterPending.Wait); every part must
// already be retired. Transport faults exclude their server; a
// non-fault error or a clean-but-short chunk aborts (a short chunk at
// a fixed offset is a hole, not a prefix, exactly like Session.Write's
// pipelined path — faulted parts carry no response and are judged by
// run coverage instead); otherwise every run must retain one replica
// all of whose chunks are clean. On success the merged response covers
// all `total` logical bytes.
func (cl *Cluster) finishWriteParts(ino kernel.InodeID, runs []run, parts []*part, total int) (*Resp, error) {
	for _, pt := range parts {
		if pt.err != nil && fabric.IsFault(pt.err) {
			cl.markDown(pt.target)
		}
	}
	if err := firstAppError(parts); err != nil {
		return &Resp{Status: StatusOf(err), Attr: mergeAttr(parts)}, err
	}
	for _, pt := range parts {
		if pt.err == nil && int(pt.resp.N) != pt.want {
			err := fmt.Errorf("rfsrv: short striped write (%d of %d) at %d", pt.resp.N, pt.want, pt.r.off)
			return &Resp{Status: StIO, Attr: mergeAttr(parts)}, err
		}
	}
	if err := cl.checkRunCoverage(runs, parts); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	// The write succeeded; record its byte ranges in the resync journal
	// of every excluded replica (skipped at issue or faulted above), so
	// Reinstate can re-copy them.
	if cl.anyDown() {
		cl.journalRunDirty(ino, runs)
	}
	return &Resp{Status: StOK, Attr: mergeAttr(parts), Epoch: mergeEpoch(parts), N: uint32(total)}, nil
}

// checkRunCoverage verifies, after a replicated write's parts retired,
// that every run retains at least one replica all of whose chunks
// completed cleanly. Parts that faulted mark their (run, target) pair
// dirty; a run covered by no clean pair has lost its data. The
// fault-free hot path (every write, outside fault-injection tests)
// allocates nothing: every part issued is a covering part.
func (cl *Cluster) checkRunCoverage(runs []run, parts []*part) error {
	anyErr := false
	for _, pt := range parts {
		if pt.err != nil {
			anyErr = true
			break
		}
	}
	if cap(cl.coverScratch) < len(runs) {
		cl.coverScratch = make([]bool, len(runs))
	}
	covered := cl.coverScratch[:len(runs)]
	for i := range covered {
		covered[i] = false
	}
	if !anyErr {
		for _, pt := range parts {
			covered[pt.ridx] = true
		}
	} else {
		type pair struct{ ridx, target int }
		dirty := make(map[pair]bool)
		for _, pt := range parts {
			if pt.err != nil {
				dirty[pair{pt.ridx, pt.target}] = true
			}
		}
		for _, pt := range parts {
			if pt.err == nil && !dirty[pair{pt.ridx, pt.target}] {
				covered[pt.ridx] = true
			}
		}
	}
	for ri, ok := range covered {
		if !ok {
			return fmt.Errorf("rfsrv: write run at %d lost on every replica: %w",
				runs[ri].off, fabric.ErrPeerDead)
		}
	}
	return nil
}

// setSizeTo reconciles file size after a write ending at end: every
// server except the tail run's own targets (whose local sizes already
// reach end) and the excluded ones gets a grow-only OpSetSize carrying
// this client's observed size epoch. Skipped entirely when this client
// holds a validated size >= end, and always a no-op on a one-server
// cluster. A server that faults during reconciliation is excluded —
// not an error: the alive servers are consistent, which is all the
// cache records. Because the grow mode is idempotent, a retry after a
// transient fault (write re-run, or Reinstate then write) replays it
// safely in any order. Servers refuse a stale observed epoch
// (a foreign exact size set ran since): their StStale replies carry
// the authoritative epoch, the cache entry resets, and the fan
// retries under the fresh epoch.
//
// A whole-on-home file never reconciles: its single data owner is its
// metadata home (the same hash picks both), so the only server anyone
// asks about the file already holds the authoritative size — and with
// replication, every write landed on the same replica set a re-homed
// getattr walks. That class sidesteps the fan by placement (DESIGN.md
// §10); every other layout now has a second way out, batched size
// publishes (SetSizePublishBatch, DESIGN.md §11): instead of fanning
// after every extending write, the cluster coalesces the highest
// pending end per inode and flushes one combined OpSetSize batch per
// server at the publish window, taking the per-write cost from N−1
// round trips to an amortized fraction of one. This function is the
// immediate (unbatched) path; Write diverts to enqueueSizePub when a
// publish window is configured. figures.SmallFile audits the
// whole-on-home zero and figures.SharedFile the amortized fraction.
func (cl *Cluster) setSizeTo(p *sim.Proc, lay LayoutClass, ino kernel.InodeID, end int64, tailTargets []int) error {
	if lay == LayoutWhole {
		return nil
	}
	skip := tailTargets
	for attempt := 0; ; attempt++ {
		e := cl.sizes[ino]
		if e.size >= end {
			return nil
		}
		stale, err := cl.setSizeFan(p, ino, end, e.epoch, skip)
		if err != nil {
			return err
		}
		if !stale {
			cl.sizes[ino] = cl.entry(end, e.epoch)
			return nil
		}
		// The StStale replies refreshed the cache entry (observeResp);
		// go around with the authoritative epoch. The foreign exact set
		// that raced us may have shrunk the tail targets after our data
		// landed on them, so retries stop skipping anyone. The cap only
		// guards against a pathological truncate storm.
		skip = nil
		if attempt >= 3 {
			return fmt.Errorf("rfsrv: size reconciliation of inode %d kept racing foreign truncates: %w", ino, ErrStaleEpoch)
		}
	}
}

// skipsServer reports whether server i is in the (tiny, ≤R-entry)
// skip list — a linear scan beats a map allocation on the per-write
// reconciliation path.
func skipsServer(skip []int, i int) bool {
	for _, s := range skip {
		if s == i {
			return true
		}
	}
	return false
}

// setSizeFan is one round of the grow-only reconciliation: OpSetSize
// to every alive server not in skip, in parallel on the control paths.
// Faulting servers are excluded; stale reports whether any server
// refused the observed epoch (the caller revalidates and retries);
// other application errors win over staleness. Flights live in the
// cluster's scratch (reconciliation fans never nest with metadata
// fanout — both run to completion before returning).
func (cl *Cluster) setSizeFan(p *sim.Proc, ino kernel.InodeID, end int64, epoch uint64, skip []int) (stale bool, err error) {
	flights := cl.flightScratch[:0]
	targets := cl.targetScratch[:0]
	defer func() {
		cl.flightScratch = flights[:0]
		cl.targetScratch = targets[:0]
	}()
	var firstErr error
	for _, i := range cl.members {
		s := cl.sessions[i]
		if cl.down[i] || skipsServer(skip, i) {
			continue
		}
		cl.SetSizes.Add(1)
		cl.fanReq = Req{Op: OpSetSize, Ino: ino, Off: end, Len: PackSetSize(false, epoch)}
		fl, err := startSyncMeta(p, s, &cl.fanReq)
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	for k := range flights {
		resp, err := flights[k].wait(p)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(targets[k])
			continue
		}
		cl.observeResp(resp)
		if errors.Is(err, ErrStaleEpoch) {
			if cl.epochBehind(resp) {
				// A member lagging the cached epoch missed an exact set
				// outright (see epochBehind) — exclude it instead of
				// burning the retry budget on a fan it can never accept.
				cl.markDown(targets[k])
				continue
			}
			stale = true
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stale, firstErr
}

// SetFileSize publishes an externally tracked end-of-file through the
// grow-only reconciliation: every alive server's local size is raised
// to at least size, under the validated cache (a no-op when a cached
// entry already covers it). This is the barrier piece asynchronous
// writers need — ORFS write-behind extends only the servers its dirty
// pages land on, then calls SetFileSize at its sync barrier so homed
// getattr and striped-read EOF clipping agree with the bytes it wrote.
// Under an adaptive layout policy, publishing a size past
// PromoteThreshold is also the async writer's promotion point: the
// caller has retired its pipeline by the time it publishes (that is
// what a sync barrier is), so this is the one safe moment to migrate
// a whole-on-home file that grew past the threshold via StartWrite.
func (cl *Cluster) SetFileSize(p *sim.Proc, ino kernel.InodeID, size int64) error {
	if size < 0 {
		return ErrInval
	}
	lay, err := cl.layoutFor(p, ino)
	if err != nil {
		return err
	}
	if lay, err = cl.maybePromote(p, ino, lay, size); err != nil {
		return err
	}
	if cl.pubBatch > 0 && lay != LayoutWhole && len(cl.members) > 1 {
		// A size publish IS a barrier: enqueue, then flush everything
		// pending, so the caller's EOF is on every alive server when
		// this returns (what ORFS write-behind's sync point needs).
		if e := cl.sizes[ino]; e.size < size {
			if _, ok := cl.pendPub[ino]; !ok {
				cl.pendOrder = append(cl.pendOrder, ino)
				cl.pendPub[ino] = size
			} else if size > cl.pendPub[ino] {
				cl.pendPub[ino] = size
			}
		}
		return cl.FlushSizes(p)
	}
	return cl.setSizeTo(p, lay, ino, size, nil)
}

// ---- adaptive promotion ----

// maybePromote is the adaptive-policy trigger: a whole-on-home file
// about to reach past PromoteThreshold (end is the prospective EOF) is
// migrated to standard striping first, and the caller proceeds under
// the returned class. Promotion runs only from synchronous call sites
// (Write, SetFileSize) — never mid-async-stream, where the caller's
// own unretired pendings could still be landing bytes the migration
// would miss; an async writer's promotion point is the SetFileSize at
// its sync barrier.
func (cl *Cluster) maybePromote(p *sim.Proc, ino kernel.InodeID, lay LayoutClass, end int64) (LayoutClass, error) {
	if !cl.policyOn || !cl.policy.Adaptive || lay != LayoutWhole || end <= PromoteThreshold {
		return lay, nil
	}
	if err := cl.promote(p, ino); err != nil {
		return lay, err
	}
	return LayoutStandard, nil
}

// stagingVec returns an n-byte vector over the cluster's migration
// staging buffer, mapping it on first use (promotion is rare; clusters
// that never promote never pay the mapping).
func (cl *Cluster) stagingVec(n int) (core.Vector, error) {
	c := cl.sessions[0].c
	if cl.migVA == 0 {
		alloc := c.as.Mmap
		if c.kernSide {
			alloc = c.as.MmapContig
		}
		va, err := alloc(MaxWriteChunk, "rfsrv-promote")
		if err != nil {
			return nil, err
		}
		cl.migVA = va
	}
	return core.Of(c.seg(cl.migVA, n)), nil
}

// promote migrates a whole-on-home file to standard striping: its
// bytes are copied from the home to every standard-placement replica
// they belong on, then an OpSetLayout fans the class flip to every
// alive server (epoch-bumping, so every client's validated size cache
// revalidates under the new placement). The copy travels the
// synchronous control paths — never window slots, so promotion cannot
// deadlock against a caller's pipeline. Fragments whose standard
// placement includes the home are not rewritten: whole-on-home stores
// bytes at their global offsets, which is exactly where standard
// striping expects them.
func (cl *Cluster) promote(p *sim.Proc, ino kernel.InodeID) error {
	src := cl.members[cl.wholeHome(ino)]
	resp, err := cl.homedMeta(p, &Req{Op: OpGetattr, Ino: ino}, func() int { return cl.homeIdx(ino) })
	if err != nil {
		return err
	}
	size := resp.Attr.Size
	for off := int64(0); off < size; {
		n := int(size - off)
		if n > MaxWriteChunk {
			n = MaxWriteChunk
		}
		vec, err := cl.stagingVec(n)
		if err != nil {
			return err
		}
		chunkOff := off
		rresp, err := withReplica(cl, LayoutWhole, ino, chunkOff, n, func(idx int) (*Resp, error) {
			return cl.sessions[idx].Client().Read(p, ino, chunkOff, vec)
		})
		if err != nil {
			return err
		}
		if int(rresp.N) != n {
			return fmt.Errorf("rfsrv: promote inode %d: short read (%d of %d) at %d", ino, rresp.N, n, off)
		}
		// Scatter the chunk to its standard-placement replicas, one
		// stripe fragment at a time.
		end := off + int64(n)
		for off < end {
			fragEnd := (off/cl.stripe + 1) * cl.stripe
			if fragEnd > end {
				fragEnd = end
			}
			frag := int(fragEnd - off)
			owner := cl.ownerIdx(off)
			okReplicas := 0
			for j := 0; j < cl.replicas; j++ {
				idx := cl.members[(owner+j)%len(cl.members)]
				if cl.down[idx] {
					cl.journalDirty(idx, ino, off, frag)
					continue
				}
				if idx == src {
					okReplicas++ // the home already holds these bytes
					continue
				}
				wresp, werr := cl.sessions[idx].Client().Write(p, ino, off, vec.Slice(int(off-chunkOff), frag))
				if werr != nil {
					if fabric.IsFault(werr) {
						cl.markDown(idx)
						cl.journalDirty(idx, ino, off, frag)
						continue
					}
					return werr
				}
				if int(wresp.N) != frag {
					return fmt.Errorf("rfsrv: promote inode %d: short copy (%d of %d) at %d", ino, wresp.N, frag, off)
				}
				okReplicas++
			}
			if okReplicas == 0 {
				return cl.allReplicasDown(off)
			}
			off = fragEnd
		}
	}
	if _, err := cl.fanout(p, &Req{Op: OpSetLayout, Ino: ino, Len: uint32(LayoutStandard)}); err != nil {
		return err
	}
	cl.layouts[ino] = LayoutStandard
	cl.Promotions.Add(int(size))
	return nil
}

// ---- pipelined data path (Async) ----

// clusterPending is one striped in-flight operation: the per-server
// parts of a single logical read or write.
type clusterPending struct {
	cl     *Cluster
	ino    kernel.InodeID
	lay    LayoutClass
	parts  []*part
	runs   []run // the logical runs (writes: replica coverage check)
	want   int   // expected total (writes; -1 for reads)
	issued sim.Time

	done bool
	resp *Resp
	err  error

	gated bool // counted in the view's pending until Wait
}

// seal records the issue time once every part is out (the first part's
// window-entry instant — the same instant a Session would report,
// keeping latency accounting bit-identical in the one-server
// configuration) so Issued keeps answering after Wait recycles the
// parts.
func (cp *clusterPending) seal() {
	if len(cp.parts) > 0 {
		cp.issued = cp.parts[0].pd.issued
	}
}

// Wait implements PendingOp: retires every part and merges. Faulted
// read parts fail over to their stripe's next alive replica before the
// merge; faulted write parts exclude their server and are tolerated as
// long as every run kept a clean replica. The parts return to the
// cluster's freelist once merged — the memoized (resp, err) is all a
// second Wait needs.
func (cp *clusterPending) Wait(p *sim.Proc) (*Resp, error) {
	if cp.done {
		return cp.resp, cp.err
	}
	cp.done = true
	for _, pt := range cp.parts {
		pt.retire(p)
	}
	if cp.want < 0 {
		cp.cl.failoverReads(p, cp.lay, cp.ino, cp.parts)
		for _, pt := range cp.parts {
			cp.cl.observeResp(pt.resp)
		}
		if err := firstError(cp.parts); err != nil {
			cp.resp, cp.err = &Resp{Status: StatusOf(err), Attr: mergeAttr(cp.parts)}, err
		} else {
			cp.resp = mergeRead(cp.parts)
		}
	} else {
		cp.resp, cp.err = cp.cl.finishWriteParts(cp.ino, cp.runs, cp.parts, cp.want)
		for _, pt := range cp.parts {
			cp.cl.observeResp(pt.resp)
		}
	}
	cp.cl.notePendingDone(cp)
	cp.cl.putParts(cp.parts)
	cp.parts = nil
	return cp.resp, cp.err
}

// Issued implements PendingOp: the time the first per-server request
// entered its window (sealed at issue; see seal).
func (cp *clusterPending) Issued() sim.Time {
	if len(cp.parts) > 0 {
		return cp.parts[0].pd.issued
	}
	return cp.issued
}

// StartRead implements Async: the striped read issues without waiting.
// Callers holding unretired pendings must consult CanStart first (see
// the Async contract) — the per-server issues here block on their own
// windows.
func (cl *Cluster) StartRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (PendingOp, error) {
	if err := cl.enterOp(p, false); err != nil {
		return nil, err
	}
	defer cl.exitOp()
	if off < 0 {
		return nil, ErrInval
	}
	lay, lerr := cl.layoutFor(p, ino)
	if lerr != nil {
		return nil, lerr
	}
	total := dst.TotalLen()
	cp := &clusterPending{cl: cl, ino: ino, lay: lay, want: -1, issued: p.Now()}
	if total == 0 {
		// Zero-length read: one attr-only request to the offset's
		// preferred replica, like the synchronous Read path — with the
		// same issue-time failover (Wait-time faults fail over through
		// failoverReads like any other part).
		pt, err := withReplica(cl, lay, ino, off, 0, func(idx int) (*part, error) {
			pd, err := cl.sessions[idx].startRead(p, ino, off, dst)
			if err != nil {
				return nil, err
			}
			pt := cl.getPart()
			pt.pd, pt.r, pt.target, pt.vec = pd, run{owner: cl.ownerAt(lay, ino, off), off: off}, idx, dst
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
		cp.seal()
		cl.notePendingStart(cp)
		return cp, nil
	}
	for _, r := range cl.runs(lay, ino, off, total) {
		// An operation spanning more same-server stripes than that
		// server's window retires its own earlier runs to make room
		// (inside issueRead) — it must never depend on the caller, who
		// cannot retire a pending it has not been handed yet.
		pt, err := cl.issueRead(p, lay, ino, r, dst.Slice(int(r.off-off), r.n), cp.parts)
		if err != nil {
			drainParts(p, cp.parts)
			cl.putParts(cp.parts)
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
	}
	cp.seal()
	cl.notePendingStart(cp)
	return cp, nil
}

// StartWrite implements Async: one striped write request of at most
// MaxWriteChunk, issued without waiting. Unlike the synchronous Write
// it does not reconcile sizes across servers — asynchronous writers
// (ORFS write-behind) track EOF themselves and their dirty data is
// re-readable from the servers that own it. For the same reason it
// never promotes a whole-on-home file mid-stream: the caller's
// unretired pendings could still be landing bytes a migration would
// miss, so adaptive promotion waits for the SetFileSize at the
// writer's sync barrier.
func (cl *Cluster) StartWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (PendingOp, error) {
	if err := cl.enterOp(p, false); err != nil {
		return nil, err
	}
	defer cl.exitOp()
	if off < 0 {
		return nil, ErrInval
	}
	lay, lerr := cl.layoutFor(p, ino)
	if lerr != nil {
		return nil, lerr
	}
	total := src.TotalLen()
	if total > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: StartWrite of %d bytes exceeds one %d-byte request", total, MaxWriteChunk)
	}
	cp := &clusterPending{cl: cl, ino: ino, lay: lay, want: total, issued: p.Now()}
	if total == 0 {
		// Zero-length write: one real request to the offset's preferred
		// replica, like the synchronous degenerate path (so the RPC
		// trace and the returned attributes match Session.StartWrite).
		// The synthetic run makes finishWriteParts' coverage check see
		// a Wait-time fault instead of vacuously succeeding.
		r := run{owner: cl.ownerAt(lay, ino, off), off: off}
		cp.runs = []run{r}
		pt, err := withReplica(cl, lay, ino, off, 0, func(idx int) (*part, error) {
			pd, err := cl.sessions[idx].startWrite(p, ino, off, src)
			if err != nil {
				return nil, err
			}
			pt := cl.getPart()
			pt.pd, pt.r, pt.target = pd, r, idx
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		cp.parts = append(cp.parts, pt)
		cp.seal()
		cl.notePendingStart(cp)
		return cp, nil
	}
	// The pending outlives this call, so it gets its own copy of the
	// runs (cl.runs returns per-operation scratch).
	cp.runs = append(cp.runs, cl.runs(lay, ino, off, total)...)
	for ri, r := range cp.runs {
		issued := 0
		for j := 0; j < cl.replicas; j++ {
			idx := cl.members[(r.owner+j)%len(cl.members)]
			if cl.down[idx] {
				continue
			}
			s := cl.sessions[idx]
			makeRoom(p, s, cp.parts)
			pd, err := s.startWrite(p, ino, r.off, src.Slice(int(r.off-off), r.n))
			if err != nil {
				if fabric.IsFault(err) {
					cl.markDown(idx)
					continue
				}
				drainParts(p, cp.parts)
				cl.putParts(cp.parts)
				return nil, err
			}
			cl.StripeWrites.Add(r.n)
			pt := cl.getPart()
			pt.pd, pt.r = pd, r
			pt.want, pt.ridx, pt.target = r.n, ri, idx
			cp.parts = append(cp.parts, pt)
			issued++
		}
		if issued == 0 {
			drainParts(p, cp.parts)
			cl.putParts(cp.parts)
			return nil, cl.allReplicasDown(r.off)
		}
	}
	cp.seal()
	cl.notePendingStart(cp)
	if v := cl.view; v != nil && v.migrating {
		v.logWrite(ino, off, total)
	}
	// The size cache is deliberately NOT updated here: sizes[ino]
	// records "every server reconciled to this size", and an async
	// write extends only the servers its runs touch. The next
	// synchronous Write past this end runs setSizeTo as usual; callers
	// with their own EOF tracking publish it through SetFileSize.
	return cp, nil
}

// ---- metadata path ----

// cloneReq copies a request so per-server sequence stamping never
// mutates a caller's (or a sibling server's) request.
func cloneReq(req *Req) *Req {
	r := *req
	return &r
}

// syncMetaFlight is one in-flight metadata request on a server's
// synchronous control path.
type syncMetaFlight struct {
	c     *FabricClient
	hdrOp fabric.Op
	seq   uint64
}

// The package's lock order: a window slot (Session.free token) may be
// held while taking the client control lock, never the reverse —
// otherwise a consumer holding the control path could park on a full
// window that only drains through that same control path.
//
//analyze:lockorder Session.free < FabricClient.lock

// startSyncMeta issues a metadata request through s's underlying
// synchronous client — its private control buffers, NOT a window slot.
// This is what makes cluster metadata deadlock-free: a consumer whose
// striped reads or writes hold every window slot of some server
// (ORFS readahead can legitimately do this) can still look up, stat
// and reconcile, because metadata never waits on the data windows.
func startSyncMeta(p *sim.Proc, s *Session, req *Req) (syncMetaFlight, error) {
	c := s.c
	c.lock.Acquire(p)
	c.seq++
	req.Seq, req.EP = c.seq, c.myEP
	hdrOp, err := c.postHdr(p, &c.ctl, req.Seq)
	if err != nil {
		c.lock.Release()
		return syncMetaFlight{}, err
	}
	if err := c.sendReq(p, &c.ctl, req, nil); err != nil {
		// The request never left (e.g. dead-peer rejection): withdraw
		// the posted header receive so the control buffer is quiescent
		// for the next requester.
		fabric.Cancel(p, hdrOp)
		c.lock.Release()
		return syncMetaFlight{}, err
	}
	return syncMetaFlight{c: c, hdrOp: hdrOp, seq: req.Seq}, nil
}

// wait retires the flight and releases the control path.
func (fl *syncMetaFlight) wait(p *sim.Proc) (*Resp, error) {
	defer fl.c.lock.Release()
	return fl.c.finish(p, &fl.c.ctl, fl.hdrOp, fl.seq, fl.c.timeout)
}

// syncMeta is one synchronous metadata round trip to server idx.
func (cl *Cluster) syncMeta(p *sim.Proc, idx int, req *Req) (*Resp, error) {
	fl, err := startSyncMeta(p, cl.sessions[idx], req)
	if err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return fl.wait(p)
}

// Meta implements Client. Read-only operations go to the home server
// (re-homed past excluded servers, and failed over when the home
// faults mid-request); mutations replicate to every alive server in
// server order, and the per-server answers must agree (same status,
// same inode) or the cluster reports namespace divergence — a faulting
// server is excluded, never counted as divergent. OpTruncate is
// translated to the exact mode of OpSetSize — same wire size, but it
// carries this client's observed size epoch, so servers refuse it when
// the view is stale and the cluster revalidates and retries; OpSetSize
// requests get their observed epoch stamped the same way.
func (cl *Cluster) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	if err := ValidateReq(req); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	if req.Op == OpRead || req.Op == OpWrite {
		return &Resp{Status: StInval}, ErrInval
	}
	mut := true
	switch req.Op {
	case OpLookup, OpGetattr, OpReaddir:
		mut = false
	}
	if err := cl.enterOp(p, mut); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	defer cl.exitOp()
	// Pending size publishes flush before any metadata operation, so a
	// getattr after a batched write observes the written size and a
	// namespace mutation never reorders ahead of the publishes that
	// preceded it. (Data reads don't flush: an unpublished size only
	// makes reads short, never wrong.)
	if err := cl.flushDueSizes(p); err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	if cl.sharded {
		return cl.shardMeta(p, req)
	}
	switch req.Op {
	case OpLookup:
		// Read-only answers feed only the EPOCH side of the size cache
		// (observeResp): sizes[ino].size means "every alive server
		// reconciled to this size", and a single server's view (e.g.
		// the home after an async StartWrite that extended only its own
		// stripes) cannot establish that — caching it would silently
		// disable the next write's setSizeTo.
		return cl.homedMeta(p, req, func() int { return cl.pathHomeIdx(req.Ino, req.Name) })
	case OpGetattr, OpReaddir:
		return cl.homedMeta(p, req, func() int { return cl.homeIdx(req.Ino) })
	case OpTruncate:
		return cl.setSizeMeta(p, req.Ino, req.Off, true)
	case OpSetSize:
		exact, _ := UnpackSetSize(req.Len)
		return cl.setSizeMeta(p, req.Ino, req.Off, exact)
	case OpCreate:
		return cl.fanout(p, cl.hintCreate(req))
	default:
		return cl.fanout(p, req)
	}
}

// hintCreate injects the adaptive policy's default layout class into an
// unhinted create: new files start whole-on-home and are promoted when
// they outgrow PromoteThreshold. Explicit hints (a caller that knows
// the file will be huge asks for LayoutWide up front) pass through
// untouched, as does everything when the policy is off — the request
// is then byte-identical to the pre-layout protocol.
func (cl *Cluster) hintCreate(req *Req) *Req {
	if !cl.policyOn || !cl.policy.Adaptive || req.Len != 0 {
		return req
	}
	r := *req
	r.Len = uint32(LayoutWhole)
	return &r
}

// setSizeMeta fans an OpSetSize to every alive server — exact mode
// (shrink-capable, epoch-bumping: the cluster face of truncate) or
// grow mode — revalidating and retrying when the observed epoch
// proves stale, so callers never see a spurious ErrStaleEpoch from a
// racing foreign size set.
func (cl *Cluster) setSizeMeta(p *sim.Proc, ino kernel.InodeID, size int64, exact bool) (*Resp, error) {
	for attempt := 0; ; attempt++ {
		req := &Req{Op: OpSetSize, Ino: ino, Off: size, Len: PackSetSize(exact, cl.sizes[ino].epoch)}
		resp, err := cl.fanout(p, req)
		if !errors.Is(err, ErrStaleEpoch) {
			return resp, err
		}
		// The refusals refreshed the cached epoch (observeResp in
		// fanout); go around with the authoritative one.
		if attempt >= 3 {
			return resp, fmt.Errorf("rfsrv: size set of inode %d kept racing foreign size sets: %w", ino, ErrStaleEpoch)
		}
	}
}

// homedMeta runs a read-only metadata request against its home server,
// excluding the home and re-homing (the hash walks to the next alive
// server) whenever the transport faults. home is re-evaluated per
// attempt because exclusion changes the routing.
func (cl *Cluster) homedMeta(p *sim.Proc, req *Req, home func() int) (*Resp, error) {
	for {
		idx := home()
		if idx < 0 {
			err := fmt.Errorf("rfsrv: %v: every server excluded: %w", req.Op, fabric.ErrPeerDead)
			return &Resp{Status: StatusOf(err)}, err
		}
		resp, err := cl.syncMeta(p, idx, req)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(idx)
			cl.Failovers.Add(0)
			continue
		}
		// The home's reply is the control-path revalidation point: its
		// epoch either confirms the cached size or invalidates it.
		cl.observeResp(resp)
		return resp, err
	}
}

// fanout replicates a namespace mutation to every alive server in
// parallel (each server's synchronous control path; see startSyncMeta)
// and verifies the answers agree. With one server it is exactly one
// synchronous metadata round trip. A server that faults mid-mutation
// is recorded as excluded — its missing answer is a degraded-mode
// fact, not namespace divergence; it must re-sync before Reinstate.
func (cl *Cluster) fanout(p *sim.Proc, req *Req) (*Resp, error) {
	if len(cl.members) == 1 {
		resp, err := cl.syncMeta(p, cl.members[0], req)
		cl.observeResp(resp)
		cl.noteMutation(req, resp, err)
		return resp, err
	}
	flights := cl.flightScratch[:0]
	targets := cl.targetScratch[:0]
	defer func() {
		cl.flightScratch = flights[:0]
		cl.targetScratch = targets[:0]
	}()
	var firstErr error
	for _, i := range cl.members {
		s := cl.sessions[i]
		if cl.down[i] {
			continue
		}
		if len(flights) > 0 {
			cl.MetaFanout.Add(1)
		}
		// One reusable request per fan: startSyncMeta stamps and encodes
		// it into the target's control buffer before returning, so the
		// next iteration may overwrite it (per-server clones would only
		// feed the garbage collector).
		cl.fanReq = *req
		fl, err := startSyncMeta(p, s, &cl.fanReq)
		if err != nil {
			if fabric.IsFault(err) {
				cl.markDown(i)
				continue
			}
			firstErr = err
			break
		}
		flights = append(flights, fl)
		targets = append(targets, i)
	}
	resps := make([]*Resp, 0, len(flights))
	stale := false
	for k := range flights {
		r, err := flights[k].wait(p)
		if err != nil && fabric.IsFault(err) {
			cl.markDown(targets[k])
			continue // excluded, not divergent
		}
		cl.observeResp(r)
		if errors.Is(err, ErrStaleEpoch) {
			if cl.epochBehind(r) {
				// The refuser's epoch is BEHIND the cache: it missed an
				// exact set while dead in another client's view, and no
				// retry epoch can satisfy it and the coherent members
				// at once. Exclude it like a fault (see epochBehind).
				cl.markDown(targets[k])
				continue
			}
			stale = true
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		resps = append(resps, r)
	}
	if stale {
		// A foreign exact size set raced this OpSetSize: some servers
		// may have applied it (winning their epoch's slot) while the
		// rest refused — that is staleness to revalidate and retry
		// against, never namespace divergence. The cache entry was
		// refreshed above.
		return &Resp{Status: StStale}, ErrStaleEpoch
	}
	if len(resps) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("rfsrv: %v: every server excluded: %w", req.Op, fabric.ErrPeerDead)
		}
		return &Resp{Status: StatusOf(firstErr)}, firstErr
	}
	base := resps[0]
	for _, r := range resps[1:] {
		if r == nil || base == nil {
			continue
		}
		if r.Status != base.Status || r.Attr.Ino != base.Attr.Ino {
			err := fmt.Errorf("rfsrv: cluster namespace diverged on %v %q (status %d/ino %d vs %d/%d)",
				req.Op, req.Name, base.Status, base.Attr.Ino, r.Status, r.Attr.Ino)
			return &Resp{Status: StIO}, err
		}
	}
	cl.noteMutation(req, base, firstErr)
	return base, firstErr
}

// bumpAllNs records a mutation every server was (or should have been)
// told about: every per-server mutation count advances, INCLUDING the
// excluded servers' — a down server missed the fan, which is exactly
// why its Reinstate must be refused. Used by the replicated (unsharded)
// fan-out and by the global operations that still fan under sharding
// (exact size sets, truncate, layout flips).
func (cl *Cluster) bumpAllNs() {
	for _, i := range cl.members {
		cl.nsEpochs[i]++
	}
}

// bumpGroupNs records a mutation of the namespace slice owned by the
// given residue: the R servers of its owner group advance, including
// excluded members (they missed it and must resync before Reinstate);
// everyone else's slice is untouched and their counts stay put.
func (cl *Cluster) bumpGroupNs(owner int) {
	n := len(cl.members)
	for j := 0; j < cl.replicas; j++ {
		cl.nsEpochs[cl.members[(owner+j)%n]]++
	}
}

// noteMutation updates the size cache and the per-server mutation
// counts after a replicated mutation succeeded on every alive server.
// Exact size sets and namespace mutations advance the counts — they
// are exactly the operations an excluded server misses unrecoverably
// (Reinstate refuses when any ran); grow-only reconciliation is
// replayable and advances nothing.
func (cl *Cluster) noteMutation(req *Req, resp *Resp, err error) {
	if err != nil || resp == nil {
		return
	}
	switch req.Op {
	case OpCreate:
		cl.bumpAllNs()
		cl.sizes[resp.Attr.Ino] = cl.entry(resp.Attr.Size, resp.Epoch)
		cl.journalMutationAll(req, resp.Attr.Ino, resp.Epoch)
	case OpMkdir, OpUnlink, OpRmdir, OpRenameLocal:
		cl.bumpAllNs()
		cl.journalMutationAll(req, resp.Attr.Ino, resp.Epoch)
	case OpSetLayout:
		// A layout flip bumps the size epoch on every server (that is
		// what revalidates other clients' placement); a server that
		// missed it is desynchronized like any missed exact size set.
		cl.bumpAllNs()
		cl.journalMutationAll(req, req.Ino, resp.Epoch)
	case OpTruncate:
		// Defensive: Meta translates truncates to exact OpSetSize, but a
		// raw fan-out (MetaBatch carrying one) records the same facts.
		cl.bumpAllNs()
		cl.sizes[req.Ino] = cl.entry(req.Off, resp.Epoch)
		cl.journalMutationAll(&Req{Op: OpSetSize, Ino: req.Ino, Off: req.Off, Len: PackSetSize(true, 0)}, req.Ino, resp.Epoch)
	case OpSetSize:
		if exact, _ := UnpackSetSize(req.Len); exact {
			cl.bumpAllNs()
			cl.sizes[req.Ino] = cl.entry(req.Off, resp.Epoch)
			cl.journalMutationAll(req, req.Ino, resp.Epoch)
		} else if e, ok := cl.sizes[req.Ino]; !ok || e.epoch == resp.Epoch && req.Off > e.size {
			cl.sizes[req.Ino] = cl.entry(req.Off, resp.Epoch)
		}
		// Grow-mode publishes are deliberately NOT journaled: they are
		// idempotent lower-bound facts the replayed data re-establishes,
		// and journaling every publish would spill constantly under
		// streaming writes.
	}
}

// MetaBatch implements Async: requests route like Meta (read-only to
// their homes, mutations to every server) and each server's share is
// issued as one combined batch in original order, so the §3.3-style
// combining survives striping. Server batches run one server at a
// time; with one server this is exactly Session.MetaBatch. Unlike
// Meta, batches flow through the per-server windows (that is what
// combines them), so callers must not hold unretired data pendings
// across a MetaBatch call. Batches route around already-excluded
// servers but do not retry mid-batch faults — a fault surfaces as the
// batch's error and the caller re-issues (Meta retries per request).
func (cl *Cluster) MetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	if err := validateBatch(reqs); err != nil {
		return nil, err
	}
	if err := cl.enterOp(p, true); err != nil {
		return nil, err
	}
	defer cl.exitOp()
	if err := cl.flushDueSizes(p); err != nil {
		return nil, err
	}
	if cl.aliveCount() == 0 {
		return nil, fmt.Errorf("rfsrv: MetaBatch: every server excluded: %w", fabric.ErrPeerDead)
	}
	if cl.sharded {
		return cl.shardMetaBatch(p, reqs)
	}
	if len(cl.members) == 1 {
		return cl.sessions[cl.members[0]].MetaBatch(p, reqs)
	}
	type share struct {
		idx  []int // original positions
		reqs []*Req
	}
	shares := make([]share, len(cl.sessions))
	mutation := make([]bool, len(reqs))
	track := make([]*Req, len(reqs)) // the request actually fanned (post-translation)
	// bumps counts the exact size sets already packed for each inode
	// earlier in THIS batch: the servers apply the batch in order and
	// bump the epoch after each exact set, so a later size mutation of
	// the same inode must observe the epoch it will find, not the
	// pre-batch one — otherwise a truncate-then-truncate batch would
	// refuse itself with StStale forever.
	bumps := make(map[kernel.InodeID]uint64)
	for i, r := range reqs {
		switch r.Op {
		case OpLookup:
			h := cl.pathHomeIdx(r.Ino, r.Name)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		case OpGetattr, OpReaddir:
			h := cl.homeIdx(r.Ino)
			shares[h].idx = append(shares[h].idx, i)
			shares[h].reqs = append(shares[h].reqs, r)
		default:
			// Size mutations translate and get their observed epoch
			// stamped like Meta's (batches do not retry staleness — a
			// StStale reply surfaces as the batch error and the caller
			// re-issues with the cache already revalidated).
			w := r
			switch r.Op {
			case OpCreate:
				w = cl.hintCreate(r)
			case OpTruncate:
				w = &Req{Op: OpSetSize, Ino: r.Ino, Off: r.Off, Len: PackSetSize(true, cl.sizes[r.Ino].epoch+bumps[r.Ino])}
				bumps[r.Ino]++
			case OpSetSize:
				exact, _ := UnpackSetSize(r.Len)
				w = cloneReq(r)
				w.Len = PackSetSize(exact, cl.sizes[r.Ino].epoch+bumps[r.Ino])
				if exact {
					bumps[r.Ino]++
				}
			}
			mutation[i] = true
			track[i] = w
			first := true
			for _, s := range cl.members {
				if cl.down[s] {
					continue
				}
				if !first {
					cl.MetaFanout.Add(1)
				}
				first = false
				shares[s].idx = append(shares[s].idx, i)
				// Server batches run one at a time, and Session.MetaBatch
				// stamps and encodes every request before returning, so
				// the shares can share one *Req — no per-server clones.
				shares[s].reqs = append(shares[s].reqs, w)
			}
		}
	}
	out := make([]*Resp, len(reqs))
	for s, sh := range shares {
		if len(sh.reqs) == 0 {
			continue
		}
		resps, err := cl.sessions[s].MetaBatch(p, sh.reqs)
		for i, r := range resps {
			pos := sh.idx[i]
			cl.observeResp(r)
			if out[pos] == nil {
				out[pos] = r
			} else if r != nil && r.Status != StStale && out[pos].Status != StStale &&
				(r.Status != out[pos].Status || r.Attr.Ino != out[pos].Attr.Ino) {
				return out, fmt.Errorf("rfsrv: cluster namespace diverged in batch at %d", pos)
			}
		}
		if err != nil {
			// A faulting server is excluded like on every other path, so
			// the caller's re-issued batch routes around it.
			if fabric.IsFault(err) {
				cl.markDown(s)
			}
			return out, err
		}
	}
	// Apply cache updates in request order: a batch may carry several
	// mutations of one inode (grow then truncate), and the LAST one
	// must win, exactly as the servers applied them.
	for pos, r := range track {
		if mutation[pos] && out[pos] != nil && out[pos].Status == StOK {
			cl.noteMutation(r, out[pos], nil)
		}
	}
	return out, nil
}

var _ Client = (*Cluster)(nil)
