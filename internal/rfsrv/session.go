package rfsrv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Session layers a sliding window of in-flight requests over a
// FabricClient, turning the paper's synchronous one-outstanding
// protocol into a pipelined one.
//
// Each window slot owns its own request/reply staging buffers, so up
// to Window requests can be on the wire at once. Completion matching
// is by sequence number: every request posts its reply-header receive
// tagged (seq, endpoint) before the request leaves, so replies demux
// to the right slot no matter the order they come back in. On MX the
// per-request waits complete out of order; on GM every completion
// funnels through the port's unique event queue, so waits effectively
// drain in arrival order — the fabric adapter routes each drained
// event to its operation, making out-of-order Wait calls safe there
// too (they find their completion already delivered).
//
// A Session is used from one simulated process at a time, like the
// underlying client.
type Session struct {
	c      *FabricClient
	window int
	free   *sim.Chan[*ctlBufs]

	inFlight, maxInFlight int

	// Reusable MetaBatch staging (a session serves one simulated
	// process, and every flight's contents are encoded and sent before
	// the next flight starts, so one set per session suffices).
	packScratch []byte
	batchBufs   []*ctlBufs
	batchHdrs   []fabric.Op
	batchSeqs   []uint64
	flight      batchFlight // the session's single outstanding flight

	// Issued/Completed count requests through the window; Batched
	// counts metadata requests that shared a fabric send (MetaBatch).
	Issued, Completed, Batched sim.Counter
}

// NewSession prepares a window of in-flight request slots over c.
// window is the number of requests that may be outstanding at once;
// window = 1 degenerates to the synchronous protocol with unchanged
// timing. p may be nil when the transport needs no registration work
// (each slot's buffers are registered like the client's own).
func NewSession(p *sim.Proc, c *FabricClient, window int) (*Session, error) {
	if window < 1 {
		return nil, fmt.Errorf("rfsrv: session window %d < 1", window)
	}
	if c.noPhys {
		// The stock-GM ablation stages all non-user data through the
		// client's single registered staging buffer; pipelining over it
		// would interleave stagings.
		return nil, fmt.Errorf("rfsrv: sessions need the physical API (DisablePhysicalAPI client)")
	}
	s := &Session{
		c:      c,
		window: window,
		free:   sim.NewChan[*ctlBufs](c.t.Node().Cluster.Env),
	}
	for i := 0; i < window; i++ {
		b := new(ctlBufs)
		if err := c.newCtlBufs(p, b); err != nil {
			return nil, err
		}
		s.free.Send(b)
	}
	return s, nil
}

// Window returns the configured window size.
func (s *Session) Window() int { return s.window }

// SetRequestTimeout arms the underlying client's per-request reply
// deadline (see FabricClient.SetRequestTimeout): windowed operations
// and control-path metadata give up after d instead of hanging on a
// dead server, releasing their window slot with the posted receives
// withdrawn. 0 (the default) disables timeouts entirely.
func (s *Session) SetRequestTimeout(d sim.Time) { s.c.SetRequestTimeout(d) }

// Client returns the underlying synchronous client.
func (s *Session) Client() *FabricClient { return s.c }

// Node implements Async: the client node.
func (s *Session) Node() *hw.Node { return s.c.t.Node() }

// InFlight returns the number of requests currently in the window.
func (s *Session) InFlight() int { return s.inFlight }

// CanStart implements Async: whether one more request fits the window
// right now. A session talks to a single server, so the inode and byte
// range are irrelevant.
func (s *Session) CanStart(ino kernel.InodeID, off int64, n int) bool { return s.inFlight < s.window }

// MaxInFlight returns the high-water mark of concurrently outstanding
// requests (tests use it to verify backpressure).
func (s *Session) MaxInFlight() int { return s.maxInFlight }

// acquire takes a window slot, blocking while the window is full —
// the protocol's backpressure.
func (s *Session) acquire(p *sim.Proc) *ctlBufs {
	b := s.free.Recv(p)
	s.inFlight++
	if s.inFlight > s.maxInFlight {
		s.maxInFlight = s.inFlight
	}
	return b
}

func (s *Session) put(b *ctlBufs) {
	s.inFlight--
	s.free.Send(b)
}

// Pending is one in-flight request. Wait retires it; requests of one
// session may be waited in any order.
type Pending struct {
	s       *Session
	bufs    *ctlBufs
	seq     uint64
	hdrOp   fabric.Op
	dataOp  fabric.Op
	release func()
	fixup   func(p *sim.Proc, n int)
	issued  sim.Time

	done bool
	resp *Resp
	err  error
}

// Issued returns the virtual time the request entered the window
// (latency accounting for the scalability figures).
func (pd *Pending) Issued() sim.Time { return pd.issued }

// StartMeta issues a metadata request through the window, blocking
// only while the window is full.
func (s *Session) StartMeta(p *sim.Proc, req *Req) (PendingOp, error) {
	pd, err := s.startMeta(p, req)
	if err != nil {
		return nil, err
	}
	return pd, nil
}

func (s *Session) startMeta(p *sim.Proc, req *Req) (*Pending, error) {
	if err := ValidateReq(req); err != nil {
		return nil, err
	}
	b := s.acquire(p)
	s.c.seq++
	req.Seq, req.EP = s.c.seq, s.c.myEP
	hdrOp, err := s.c.postHdr(p, b, req.Seq)
	if err != nil {
		s.put(b)
		return nil, err
	}
	if err := s.c.sendReq(p, b, req, nil); err != nil {
		fabric.Cancel(p, hdrOp)
		s.put(b)
		return nil, err
	}
	s.Issued.Add(1)
	return &Pending{s: s, bufs: b, seq: req.Seq, hdrOp: hdrOp, issued: p.Now()}, nil
}

// StartRead issues a read through the window; data lands directly in
// dst when the transport allows it, exactly like the sync client.
func (s *Session) StartRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (PendingOp, error) {
	pd, err := s.startRead(p, ino, off, dst)
	if err != nil {
		return nil, err
	}
	return pd, nil
}

func (s *Session) startRead(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Pending, error) {
	if off < 0 {
		return nil, ErrInval
	}
	b := s.acquire(p)
	s.c.seq++
	seq := s.c.seq
	// The request struct stages in the slot (encoded before this call
	// returns), so the issue path allocates nothing.
	req := &b.req
	*req = Req{Op: OpRead, Seq: seq, EP: s.c.myEP, Ino: ino, Off: off, Len: uint32(dst.TotalLen())}
	hdrOp, err := s.c.postHdr(p, b, seq)
	if err != nil {
		s.put(b)
		return nil, err
	}
	dataOp, release, fixup, err := s.c.postData(p, seq, dst)
	if err != nil {
		fabric.Cancel(p, hdrOp)
		s.put(b)
		return nil, err
	}
	if err := s.c.sendReq(p, b, req, nil); err != nil {
		// The request never left: withdraw both posted receives so the
		// slot's header buffer — and, crucially, the caller's data
		// buffer — are quiescent, not parked under stale seq tags.
		fabric.Cancel(p, dataOp)
		fabric.Cancel(p, hdrOp)
		release()
		s.put(b)
		return nil, err
	}
	s.Issued.Add(1)
	return &Pending{
		s: s, bufs: b, seq: seq, hdrOp: hdrOp, dataOp: dataOp,
		release: release, fixup: fixup, issued: p.Now(),
	}, nil
}

// StartWrite issues one write request through the window. src must not
// exceed MaxWriteChunk (one protocol request); Write chunks larger
// transfers across the window.
func (s *Session) StartWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (PendingOp, error) {
	pd, err := s.startWrite(p, ino, off, src)
	if err != nil {
		return nil, err
	}
	return pd, nil
}

func (s *Session) startWrite(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Pending, error) {
	if off < 0 {
		return nil, ErrInval
	}
	n := src.TotalLen()
	if n > MaxWriteChunk {
		return nil, fmt.Errorf("rfsrv: StartWrite of %d bytes exceeds one %d-byte request", n, MaxWriteChunk)
	}
	b := s.acquire(p)
	s.c.seq++
	seq := s.c.seq
	req := &b.req // slot-staged, like startRead
	*req = Req{Op: OpWrite, Seq: seq, EP: s.c.myEP, Ino: ino, Off: off, Len: uint32(n)}
	hdrOp, err := s.c.postHdr(p, b, seq)
	if err != nil {
		s.put(b)
		return nil, err
	}
	release := func() {}
	if s.c.t.Caps().Vectors {
		if err := s.c.sendReq(p, b, req, src); err != nil {
			fabric.Cancel(p, hdrOp)
			s.put(b)
			return nil, err
		}
	} else {
		if err := s.c.sendReq(p, b, req, nil); err != nil {
			fabric.Cancel(p, hdrOp)
			s.put(b)
			return nil, err
		}
		if release, err = s.c.sendData(p, seq, src); err != nil {
			fabric.Cancel(p, hdrOp)
			s.put(b)
			return nil, err
		}
	}
	s.Issued.Add(1)
	return &Pending{s: s, bufs: b, seq: seq, hdrOp: hdrOp, release: release, issued: p.Now()}, nil
}

// Wait retires the request: data completion first (reads), then the
// header reply, then the slot returns to the window. Waiting twice
// returns the memoized result. Under an armed request timeout either
// phase gives up after the deadline, withdraws its posted receive, and
// surfaces an error satisfying fabric.IsFault — the slot still returns
// to the window with all its staging quiescent.
func (pd *Pending) Wait(p *sim.Proc) (*Resp, error) {
	if pd.done {
		return pd.resp, pd.err
	}
	var dataErr error
	var dataLen int
	if pd.dataOp != nil {
		st, ok := pd.s.c.waitData(p, pd.dataOp, pd.s.c.deadlineFrom(p, pd.issued))
		if !ok {
			dataErr = fmt.Errorf("rfsrv: read data for request %d: %w", pd.seq, fabric.ErrTimeout)
		} else {
			dataErr, dataLen = st.Err, st.Len
		}
	}
	if pd.fixup != nil && dataErr == nil {
		pd.fixup(p, dataLen)
	}
	// Always quiesce the header reply — even after a data error — so
	// the slot's posted receive is inert before the slot is reused.
	// After a data-phase transport fault the header is presumed lost
	// with the peer: withdraw its receive instead of waiting a second
	// timeout.
	var resp *Resp
	var err error
	if dataErr != nil && fabric.IsFault(dataErr) {
		pd.s.c.quiesceHdr(p, pd.bufs, pd.hdrOp, pd.seq)
		err = dataErr
	} else {
		resp, err = pd.s.c.finish(p, pd.bufs, pd.hdrOp, pd.seq, pd.s.c.deadlineFrom(p, pd.issued))
		if dataErr != nil {
			err = dataErr
		}
	}
	if pd.release != nil {
		pd.release()
	}
	pd.resp, pd.err, pd.done = resp, err, true
	pd.s.Completed.Add(1)
	pd.s.put(pd.bufs)
	return resp, err
}

// ---- the synchronous Client interface over the window ----

// Meta implements Client.
func (s *Session) Meta(p *sim.Proc, req *Req) (*Resp, error) {
	pd, err := s.startMeta(p, req)
	if err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return pd.Wait(p)
}

// Read implements Client: one request, issue-and-wait (identical
// timing to the sync client at any window).
func (s *Session) Read(p *sim.Proc, ino kernel.InodeID, off int64, dst core.Vector) (*Resp, error) {
	pd, err := s.startRead(p, ino, off, dst)
	if err != nil {
		return &Resp{Status: StatusOf(err)}, err
	}
	return pd.Wait(p)
}

// drain retires the given pendings, discarding results — the error
// path of every pipelined loop. Without it an early return would
// abandon in-flight requests, leaking their window slots and
// deadlocking the session's next acquire.
func (s *Session) drain(p *sim.Proc, pds []*Pending) {
	for _, pd := range pds {
		pd.Wait(p)
	}
}

// Write implements Client: transfers larger than MaxWriteChunk are
// split into per-chunk requests pipelined through the window (the
// sync client serializes them — one round trip per chunk).
func (s *Session) Write(p *sim.Proc, ino kernel.InodeID, off int64, src core.Vector) (*Resp, error) {
	total := src.TotalLen()
	if total <= MaxWriteChunk {
		pd, err := s.startWrite(p, ino, off, src)
		if err != nil {
			return &Resp{Status: StatusOf(err)}, err
		}
		return pd.Wait(p)
	}
	var inflight []*Pending
	want := make(map[*Pending]int)
	written := 0
	var last *Resp
	retire := func(pd *Pending) error {
		resp, err := pd.Wait(p)
		if err != nil {
			return err
		}
		// Chunks were issued at fixed offsets, so a partial chunk
		// leaves a hole before the chunks already sent after it:
		// anything short is an error here, unlike the sync client,
		// which recomputes each offset from the cumulative count.
		if int(resp.N) != want[pd] {
			return fmt.Errorf("rfsrv: short write (%d of %d) at %d", resp.N, want[pd], written)
		}
		written += int(resp.N)
		last = resp
		return nil
	}
	for issued := 0; issued < total; {
		chunk := total - issued
		if chunk > MaxWriteChunk {
			chunk = MaxWriteChunk
		}
		if len(inflight) == s.window {
			pd := inflight[0]
			inflight = inflight[1:]
			if err := retire(pd); err != nil {
				s.drain(p, inflight)
				return last, err
			}
		}
		pd, err := s.startWrite(p, ino, off+int64(issued), src.Slice(issued, chunk))
		if err != nil {
			s.drain(p, inflight)
			return last, err
		}
		want[pd] = chunk
		inflight = append(inflight, pd)
		issued += chunk
	}
	for i, pd := range inflight {
		if err := retire(pd); err != nil {
			s.drain(p, inflight[i+1:])
			return last, err
		}
	}
	if last == nil {
		last = &Resp{}
	}
	last.N = uint32(written)
	return last, nil
}

// MetaBatch issues several metadata requests in ONE fabric send — the
// client-side analogue of the paper's §3.3 request combining: the
// encoded requests travel back to back in a single message, the server
// unpacks and answers each under its own sequence number, and the
// replies demux to per-request header receives posted up front.
// Batches larger than the window (or the request buffer) are split
// transparently. Read/write operations cannot be batched.
func (s *Session) MetaBatch(p *sim.Proc, reqs []*Req) ([]*Resp, error) {
	// Validate everything before acquiring any window slot, so a bad
	// request cannot abandon slots already holding posted receives.
	if err := validateBatch(reqs); err != nil {
		return nil, err
	}
	resps := make([]*Resp, 0, len(reqs))
	for start := 0; start < len(reqs); {
		fl, end, err := s.startBatchFlight(p, reqs, start)
		if err != nil {
			return resps, err
		}
		resps, err = fl.wait(p, resps)
		if err != nil {
			return resps, err
		}
		start = end
	}
	return resps, nil
}

// validateBatch is MetaBatch's up-front request check, shared with the
// cluster's cross-server batching.
func validateBatch(reqs []*Req) error {
	for _, r := range reqs {
		if r.Op == OpRead || r.Op == OpWrite {
			return fmt.Errorf("rfsrv: MetaBatch cannot carry %v", r.Op)
		}
		if err := ValidateReq(r); err != nil {
			return err
		}
	}
	return nil
}

// batchFlight is one combined metadata send on the wire: the window
// slots holding its posted reply receives and the issue time its
// reply deadlines run from. A session has at most ONE flight
// outstanding (its staging is session scratch); cross-server
// parallelism comes from flights on different sessions — the cluster
// starts one per server, then waits them all (see Cluster.FlushSizes
// and the sharded MetaBatch).
type batchFlight struct {
	s      *Session
	bufs   []*ctlBufs
	hdrs   []fabric.Op
	seqs   []uint64
	issued sim.Time
}

// startBatchFlight packs reqs[start:] — up to window requests whose
// encodings fit the 4 KB request buffer — into one combined fabric
// send, with a reply receive posted per request before the message
// leaves. It returns the flight and the index of the first request
// that did not fit (the caller loops). Requests must be pre-validated
// (validateBatch); each req's Seq/EP is stamped and its bytes fully
// encoded before return, so callers may reuse the same *Req values in
// a later flight. The previous flight must be waited first.
func (s *Session) startBatchFlight(p *sim.Proc, reqs []*Req, start int) (*batchFlight, int, error) {
	bufs := s.batchBufs[:0]
	hdrs := s.batchHdrs[:0]
	seqs := s.batchSeqs[:0]
	packed := s.packScratch[:0]
	// abort returns every slot of the aborted flight, withdrawing
	// its posted header receive first (each is tagged with a
	// sequence number that was never sent, so cancellation cannot
	// race a delivery).
	abort := func() {
		for i, b := range bufs {
			fabric.Cancel(p, hdrs[i])
			s.put(b)
		}
		s.batchBufs, s.batchHdrs = bufs[:0], hdrs[:0]
		s.batchSeqs, s.packScratch = seqs[:0], packed[:0]
	}
	end := start
	for end < len(reqs) && end-start < s.window {
		r := reqs[end]
		s.c.seq++
		r.Seq, r.EP = s.c.seq, s.c.myEP
		pre := len(packed)
		packed = EncodeReqInto(packed, r)
		if len(packed) > 4096 && end > start {
			packed = packed[:pre]
			s.c.seq-- // undo; goes in the next flight
			break
		}
		b := s.acquire(p)
		hdrOp, err := s.c.postHdr(p, b, r.Seq)
		if err != nil {
			s.put(b)
			abort()
			return nil, start, err
		}
		bufs = append(bufs, b)
		hdrs = append(hdrs, hdrOp)
		seqs = append(seqs, r.Seq)
		end++
	}
	// The packed message stages through the first slot's request
	// buffer and is matched by the server like any other request.
	if err := s.c.sendEnc(p, bufs[0], packed, nil); err != nil {
		abort()
		return nil, start, err
	}
	s.Issued.Add(len(seqs))
	if len(seqs) > 1 {
		s.Batched.Add(len(seqs) - 1)
	}
	// Hand the (grown) scratch to the flight; wait resets it.
	s.batchBufs, s.batchHdrs, s.batchSeqs, s.packScratch = bufs, hdrs, seqs, packed
	s.flight = batchFlight{s: s, bufs: bufs, hdrs: hdrs, seqs: seqs, issued: p.Now()}
	return &s.flight, end, nil
}

// wait retires every request of the flight in order, appending the
// replies to out (the first error is returned after ALL slots are
// quiesced and returned to the window — a faulted batch must not leak
// posted receives).
func (fl *batchFlight) wait(p *sim.Proc, out []*Resp) ([]*Resp, error) {
	s := fl.s
	var firstErr error
	for i := range fl.seqs {
		// Deadlines run from the flight's issue: the replies of a
		// batch against a dead server must expire together, not
		// serialize a fresh timeout each.
		resp, err := s.c.finish(p, fl.bufs[i], fl.hdrs[i], fl.seqs[i], s.c.deadlineFrom(p, fl.issued))
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out = append(out, resp)
		s.Completed.Add(1)
		s.put(fl.bufs[i])
	}
	s.batchBufs, s.batchHdrs = s.batchBufs[:0], s.batchHdrs[:0]
	s.batchSeqs, s.packScratch = s.batchSeqs[:0], s.packScratch[:0]
	return out, firstErr
}

// Rename implements Renamer over one server: a single OpRenameLocal
// applied by the backing store (both directories are local by
// definition).
func (s *Session) Rename(p *sim.Proc, srcDir kernel.InodeID, srcName string, dstDir kernel.InodeID, dstName string) (*Resp, error) {
	return s.Meta(p, &Req{
		Op: OpRenameLocal, Ino: srcDir, Off: int64(dstDir),
		Name: PackRenameNames(srcName, dstName),
	})
}

var _ Client = (*Session)(nil)
