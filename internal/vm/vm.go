// Package vm models per-process virtual memory on a simulated node:
// address spaces, VMAs, page tables, page pinning — and the paper's
// VMA SPY infrastructure (§3.2), a generic notification mechanism that
// lets external modules (the GMKRC registration cache) learn about
// address-space modifications (munmap, fork, exit), which the stock
// Linux kernel of the time did not provide.
//
// The model is deliberately eager: pages are backed by physical frames
// at map time (no demand faulting), because none of the paper's
// experiments depend on fault timing, while all of them depend on
// virtual→physical translation, contiguity and pinning, which are exact
// here.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// VirtAddr is a virtual byte address within one address space.
type VirtAddr uint64

// PageSize re-exports the system page size for convenience.
const PageSize = mem.PageSize

// VPN returns the virtual page number containing the address.
func (a VirtAddr) VPN() uint64 { return uint64(a) >> mem.PageShift }

// Offset returns the offset within the page.
func (a VirtAddr) Offset() int { return int(uint64(a) & (PageSize - 1)) }

// PageAligned reports whether the address is page aligned.
func (a VirtAddr) PageAligned() bool { return a.Offset() == 0 }

// Kind distinguishes user from kernel address spaces. The paper's MX
// kernel API makes the caller declare which kind a virtual address
// belongs to, because the spaces are independent and may contain equal
// numeric addresses mapping to different physical pages (§4.2).
type Kind int

const (
	// User is a per-process user address space.
	User Kind = iota
	// Kernel is the single shared kernel address space of a node.
	Kernel
)

// String names the address-space kind.
func (k Kind) String() string {
	if k == Kernel {
		return "kernel"
	}
	return "user"
}

// Base mmap addresses. User and kernel ranges deliberately overlap a
// window (see DistinctSpacesOverlap test) to exercise the paper's point
// that a bare virtual address does not identify its physical page.
const (
	userBase   VirtAddr = 0x1000_0000
	kernelBase VirtAddr = 0x1800_0000
)

// VMA is one mapped virtual region [Start, End).
type VMA struct {
	Start VirtAddr
	End   VirtAddr
	Label string
}

// Len returns the VMA length in bytes.
func (v *VMA) Len() int { return int(v.End - v.Start) }

// Spy receives notifications of address-space modifications: the
// paper's VMA SPY interface. Invalidate is called *before* the mapping
// is destroyed so spies can flush state (e.g. deregister NIC
// translations) while the pages are still resolvable.
type Spy interface {
	// Invalidate reports that [start, start+length) of as is about to
	// be unmapped or remapped.
	Invalidate(as *AddressSpace, start VirtAddr, length int)
	// Forked reports that child was created as a copy of parent.
	// Registered translations keep referring to the parent's frames.
	Forked(parent, child *AddressSpace)
	// Exited reports that as is being destroyed.
	Exited(as *AddressSpace)
}

// IDSource hands out address-space IDs (ASIDs). One per node.
type IDSource struct{ next uint32 }

// NewIDSource returns a source starting at ASID 1.
func NewIDSource() *IDSource { return &IDSource{next: 1} }

func (s *IDSource) take() uint32 {
	id := s.next
	s.next++
	return id
}

// AddressSpace is one process's (or the kernel's) virtual address space.
type AddressSpace struct {
	id     uint32
	kind   Kind
	name   string
	mem    *mem.Memory
	ids    *IDSource
	vmas   []*VMA // sorted by Start, non-overlapping
	pt     map[uint64]*mem.Frame
	pins   map[uint64]*pin
	spies  []Spy
	next   VirtAddr
	dead   bool
	spyGen int // counts structural modifications, for cache tests
}

// NewAddressSpace creates an empty address space.
func NewAddressSpace(m *mem.Memory, ids *IDSource, kind Kind, name string) *AddressSpace {
	base := userBase
	if kind == Kernel {
		base = kernelBase
	}
	return &AddressSpace{
		id:   ids.take(),
		kind: kind,
		name: name,
		mem:  m,
		ids:  ids,
		pt:   make(map[uint64]*mem.Frame),
		pins: make(map[uint64]*pin),
		next: base,
	}
}

// pin records an outstanding pin on a page: the frame pointer must be
// kept here because a page can be munmapped while pinned (the frame
// then survives solely through its pin references, exactly like a page
// held by get_user_pages across an munmap).
type pin struct {
	frame *mem.Frame
	count int
}

// ID returns the address-space identifier (ASID). GMKRC packs this into
// the upper bits of the 64-bit pointers handed to the NIC (§3.2).
func (as *AddressSpace) ID() uint32 { return as.id }

// Kind returns whether this is a user or kernel space.
func (as *AddressSpace) Kind() Kind { return as.kind }

// Name returns the diagnostic name.
func (as *AddressSpace) Name() string { return as.name }

// Memory returns the node memory backing this space.
func (as *AddressSpace) Memory() *mem.Memory { return as.mem }

// Generation counts structural modifications (mmap/munmap/fork/exit).
func (as *AddressSpace) Generation() int { return as.spyGen }

// RegisterSpy attaches a VMA SPY. Duplicate registration is a no-op.
func (as *AddressSpace) RegisterSpy(s Spy) {
	for _, x := range as.spies {
		if x == s {
			return
		}
	}
	as.spies = append(as.spies, s)
}

// UnregisterSpy detaches a spy.
func (as *AddressSpace) UnregisterSpy(s Spy) {
	for i, x := range as.spies {
		if x == s {
			as.spies = append(as.spies[:i], as.spies[i+1:]...)
			return
		}
	}
}

func (as *AddressSpace) checkLive() {
	if as.dead {
		panic(fmt.Sprintf("vm: use of destroyed address space %q", as.name))
	}
}

// Mmap maps length bytes (rounded up to whole pages) of fresh
// anonymous memory and returns its base address. Frames come from the
// general allocator and are typically physically scattered.
func (as *AddressSpace) Mmap(length int, label string) (VirtAddr, error) {
	return as.mapPages(length, label, func() (*mem.Frame, error) { return as.mem.AllocFrame() })
}

// MmapContig maps length bytes backed by physically contiguous frames
// (kernel bounce buffers, DMA rings).
func (as *AddressSpace) MmapContig(length int, label string) (VirtAddr, error) {
	n := pages(length)
	frames, err := as.mem.AllocContig(n)
	if err != nil {
		return 0, err
	}
	i := 0
	return as.mapPages(length, label, func() (*mem.Frame, error) {
		f := frames[i]
		i++
		return f, nil
	})
}

func pages(length int) int {
	return (length + PageSize - 1) / PageSize
}

func (as *AddressSpace) mapPages(length int, label string, alloc func() (*mem.Frame, error)) (VirtAddr, error) {
	as.checkLive()
	if length <= 0 {
		return 0, fmt.Errorf("vm: Mmap length %d", length)
	}
	n := pages(length)
	base := as.next
	as.next += VirtAddr(n+1) * PageSize // leave a guard page gap
	for i := 0; i < n; i++ {
		f, err := alloc()
		if err != nil {
			// Unwind partial mapping.
			for j := 0; j < i; j++ {
				vpn := (base + VirtAddr(j)*PageSize).VPN()
				as.mem.Put(as.pt[vpn])
				delete(as.pt, vpn)
			}
			return 0, err
		}
		as.pt[(base + VirtAddr(i)*PageSize).VPN()] = f
	}
	v := &VMA{Start: base, End: base + VirtAddr(n)*PageSize, Label: label}
	as.insertVMA(v)
	as.spyGen++
	return base, nil
}

// MapFrames maps existing frames (taking references) into the space,
// e.g. a kernel mapping of page-cache pages or a shared region.
func (as *AddressSpace) MapFrames(frames []*mem.Frame, label string) VirtAddr {
	as.checkLive()
	base := as.next
	as.next += VirtAddr(len(frames)+1) * PageSize
	for i, f := range frames {
		f.Get()
		as.pt[(base + VirtAddr(i)*PageSize).VPN()] = f
	}
	as.insertVMA(&VMA{Start: base, End: base + VirtAddr(len(frames))*PageSize, Label: label})
	as.spyGen++
	return base
}

func (as *AddressSpace) insertVMA(v *VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

// FindVMA returns the VMA containing addr, or nil.
func (as *AddressSpace) FindVMA(addr VirtAddr) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Start <= addr {
		return as.vmas[i]
	}
	return nil
}

// VMACount returns the number of mapped regions.
func (as *AddressSpace) VMACount() int { return len(as.vmas) }

// Munmap unmaps [addr, addr+length), which must be page aligned and
// fully mapped. VMAs are split as needed. Spies are notified before the
// mapping is destroyed. Pinned pages lose their translation but their
// frames survive until unpinned.
func (as *AddressSpace) Munmap(addr VirtAddr, length int) error {
	as.checkLive()
	if !addr.PageAligned() || length <= 0 || length%PageSize != 0 {
		return fmt.Errorf("vm: Munmap(%#x, %d) not page aligned", addr, length)
	}
	end := addr + VirtAddr(length)
	// Verify the whole range is mapped first (partial failure is a bug
	// in the simulated application; be strict).
	for a := addr; a < end; a += PageSize {
		if as.pt[a.VPN()] == nil {
			return fmt.Errorf("vm: Munmap of unmapped page %#x", a)
		}
	}
	for _, s := range as.spies {
		s.Invalidate(as, addr, length)
	}
	for a := addr; a < end; a += PageSize {
		vpn := a.VPN()
		as.mem.Put(as.pt[vpn])
		delete(as.pt, vpn)
	}
	// Rebuild the VMA list around the hole.
	var out []*VMA
	for _, v := range as.vmas {
		switch {
		case v.End <= addr || v.Start >= end:
			out = append(out, v)
		default:
			if v.Start < addr {
				out = append(out, &VMA{Start: v.Start, End: addr, Label: v.Label})
			}
			if v.End > end {
				out = append(out, &VMA{Start: end, End: v.End, Label: v.Label})
			}
		}
	}
	as.vmas = out
	as.spyGen++
	return nil
}

// Translate returns the physical address backing va.
func (as *AddressSpace) Translate(va VirtAddr) (mem.PhysAddr, error) {
	f := as.pt[va.VPN()]
	if f == nil {
		return 0, fmt.Errorf("vm: fault at %#x in %s space %q", va, as.kind, as.name)
	}
	return f.Addr() + mem.PhysAddr(va.Offset()), nil
}

// FrameAt returns the frame backing va, or nil.
func (as *AddressSpace) FrameAt(va VirtAddr) *mem.Frame { return as.pt[va.VPN()] }

// Resolve translates [va, va+n) into physically contiguous extents,
// merged into maximal runs. This is the core of the paper's
// physical-address-based primitives: a virtually contiguous zone is
// generally *not* physically contiguous (§4.1), so the result usually
// has one extent per page for user memory.
func (as *AddressSpace) Resolve(va VirtAddr, n int) ([]mem.Extent, error) {
	if n < 0 {
		return nil, fmt.Errorf("vm: Resolve negative length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	// Pre-size for the worst case (one extent per page) and merge
	// adjacent pages as they are appended: one allocation per call, on
	// a path every request resolves through.
	xs := make([]mem.Extent, 0, mem.PagesIn(va.Offset(), n))
	for n > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return nil, err
		}
		chunk := PageSize - va.Offset()
		if chunk > n {
			chunk = n
		}
		if last := len(xs) - 1; last >= 0 && xs[last].End() == pa {
			xs[last].Len += chunk
		} else {
			xs = append(xs, mem.Extent{Addr: pa, Len: chunk})
		}
		va += VirtAddr(chunk)
		n -= chunk
	}
	return xs, nil
}

// Pin pins the pages covering [va, va+n) in physical memory, taking a
// frame reference per page per pin. Returns the number of pages pinned.
func (as *AddressSpace) Pin(va VirtAddr, n int) (int, error) {
	as.checkLive()
	if n <= 0 {
		return 0, fmt.Errorf("vm: Pin length %d", n)
	}
	first := va.VPN()
	last := (va + VirtAddr(n) - 1).VPN()
	// Validate before mutating.
	for vpn := first; vpn <= last; vpn++ {
		if as.pt[vpn] == nil {
			return 0, fmt.Errorf("vm: Pin of unmapped page vpn=%#x", vpn)
		}
	}
	for vpn := first; vpn <= last; vpn++ {
		f := as.pt[vpn]
		f.Get()
		if p := as.pins[vpn]; p != nil {
			p.count++
		} else {
			as.pins[vpn] = &pin{frame: f, count: 1}
		}
	}
	return int(last - first + 1), nil
}

// Unpin undoes one Pin of the same range. Unpinning works even after
// the range was munmapped or the space destroyed (driver teardown).
func (as *AddressSpace) Unpin(va VirtAddr, n int) error {
	first := va.VPN()
	last := (va + VirtAddr(n) - 1).VPN()
	for vpn := first; vpn <= last; vpn++ {
		if p := as.pins[vpn]; p == nil || p.count <= 0 {
			return fmt.Errorf("vm: Unpin of unpinned page vpn=%#x", vpn)
		}
	}
	for vpn := first; vpn <= last; vpn++ {
		p := as.pins[vpn]
		p.count--
		as.mem.Put(p.frame)
		if p.count == 0 {
			delete(as.pins, vpn)
		}
	}
	return nil
}

// PinCount returns the pin count of the page containing va.
func (as *AddressSpace) PinCount(va VirtAddr) int {
	if p := as.pins[va.VPN()]; p != nil {
		return p.count
	}
	return 0
}

// ReadBytes copies n bytes at va into a fresh slice, via translation
// (the simulated CPU's view of memory).
func (as *AddressSpace) ReadBytes(va VirtAddr, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := as.ReadBytesInto(va, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBytesInto copies len(dst) bytes at va into dst via translation —
// ReadBytes without the slice allocation, for hot paths that stage
// replies through a reusable scratch buffer. It walks the page table
// directly instead of materializing an extent list.
func (as *AddressSpace) ReadBytesInto(va VirtAddr, dst []byte) error {
	for len(dst) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		chunk := PageSize - va.Offset()
		if chunk > len(dst) {
			chunk = len(dst)
		}
		as.mem.ReadAt(pa, dst[:chunk])
		dst = dst[chunk:]
		va += VirtAddr(chunk)
	}
	return nil
}

// WriteBytes copies data into memory at va via translation.
func (as *AddressSpace) WriteBytes(va VirtAddr, data []byte) error {
	xs, err := as.Resolve(va, len(data))
	if err != nil {
		return err
	}
	as.mem.Scatter(xs, data)
	return nil
}

// Fork creates a copy of the address space with the same virtual layout
// but freshly allocated frames holding copies of the data, then notifies
// spies. This mirrors the hazard the paper's GMKRC must handle: after
// fork, registered NIC translations still point at the parent's frames.
func (as *AddressSpace) Fork(name string) (*AddressSpace, error) {
	as.checkLive()
	child := NewAddressSpace(as.mem, as.ids, as.kind, name)
	child.next = as.next
	for _, v := range as.vmas {
		child.vmas = append(child.vmas, &VMA{Start: v.Start, End: v.End, Label: v.Label})
	}
	for vpn, f := range as.pt {
		nf, err := as.mem.AllocFrame()
		if err != nil {
			child.Destroy()
			return nil, err
		}
		copy(nf.Data(), f.Data())
		child.pt[vpn] = nf
	}
	as.spyGen++
	for _, s := range as.spies {
		s.Forked(as, child)
	}
	return child, nil
}

// Destroy unmaps everything and notifies spies. Further use panics.
func (as *AddressSpace) Destroy() {
	if as.dead {
		return
	}
	for _, s := range as.spies {
		s.Exited(as)
	}
	for vpn, f := range as.pt {
		as.mem.Put(f)
		delete(as.pt, vpn)
	}
	// Pin references remain held by the pinner (a NIC or driver), which
	// is responsible for releasing them via Unpin; the pin ledger keeps
	// the frame pointers so late Unpin still works.
	as.vmas = nil
	as.spyGen++
	as.dead = true
}
