package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newSpace(t *testing.T, kind Kind) (*mem.Memory, *AddressSpace) {
	t.Helper()
	m := mem.New(0)
	return m, NewAddressSpace(m, NewIDSource(), kind, "test")
}

func TestMmapTranslateRoundtrip(t *testing.T) {
	_, as := newSpace(t, User)
	base, err := as.Mmap(3*PageSize, "buf")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if err := as.WriteBytes(base+PageSize-5, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(base+PageSize-5, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestTranslateFaultOnUnmapped(t *testing.T) {
	_, as := newSpace(t, User)
	if _, err := as.Translate(0xdead000); err == nil {
		t.Fatal("expected fault on unmapped address")
	}
}

func TestMmapFramesScattered(t *testing.T) {
	m, as := newSpace(t, User)
	// Fragment the allocator.
	var junk []VirtAddr
	for i := 0; i < 4; i++ {
		a, _ := as.Mmap(PageSize, "junk")
		junk = append(junk, a)
	}
	for _, a := range junk {
		if err := as.Munmap(a, PageSize); err != nil {
			t.Fatal(err)
		}
	}
	base, _ := as.Mmap(4*PageSize, "buf")
	xs, err := as.Resolve(base, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) < 2 {
		t.Fatalf("expected scattered frames after recycling, got %d extents", len(xs))
	}
	_ = m
}

func TestMmapContigResolvesToOneExtent(t *testing.T) {
	_, as := newSpace(t, Kernel)
	base, err := as.MmapContig(8*PageSize, "bounce")
	if err != nil {
		t.Fatal(err)
	}
	xs, err := as.Resolve(base, 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 || xs[0].Len != 8*PageSize {
		t.Fatalf("contiguous mapping resolved to %v", xs)
	}
}

func TestResolvePartialPages(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(2*PageSize, "buf")
	xs, err := as.Resolve(base+100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if mem.TotalLen(xs) != 200 {
		t.Fatalf("resolve length = %d, want 200", mem.TotalLen(xs))
	}
	xs, err = as.Resolve(base+PageSize-50, 100) // crosses page boundary
	if err != nil {
		t.Fatal(err)
	}
	if mem.TotalLen(xs) != 100 {
		t.Fatalf("cross-page resolve length = %d", mem.TotalLen(xs))
	}
}

func TestMunmapSplitsVMA(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(4*PageSize, "buf")
	if err := as.Munmap(base+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 2 {
		t.Fatalf("VMA count = %d after hole punch, want 2", as.VMACount())
	}
	if as.FindVMA(base) == nil || as.FindVMA(base+PageSize) != nil || as.FindVMA(base+2*PageSize) == nil {
		t.Fatal("hole not where expected")
	}
	if _, err := as.Translate(base + PageSize + 4); err == nil {
		t.Fatal("translation survived munmap")
	}
}

func TestMunmapUnalignedRejected(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(PageSize, "buf")
	if err := as.Munmap(base+1, PageSize); err == nil {
		t.Fatal("unaligned munmap accepted")
	}
	if err := as.Munmap(base, 100); err == nil {
		t.Fatal("non-page-multiple munmap accepted")
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	m, as := newSpace(t, User)
	base, _ := as.Mmap(5*PageSize, "buf")
	if m.Allocated() != 5 {
		t.Fatalf("allocated = %d, want 5", m.Allocated())
	}
	if err := as.Munmap(base, 5*PageSize); err != nil {
		t.Fatal(err)
	}
	if m.Allocated() != 0 {
		t.Fatalf("allocated = %d after munmap, want 0", m.Allocated())
	}
}

func TestPinKeepsFrameAcrossMunmap(t *testing.T) {
	m, as := newSpace(t, User)
	base, _ := as.Mmap(PageSize, "buf")
	as.WriteBytes(base, []byte("persist"))
	pa, _ := as.Translate(base)
	if _, err := as.Pin(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Munmap(base, PageSize); err != nil {
		t.Fatal(err)
	}
	// Frame must still be alive and hold the data (DMA in flight).
	buf := make([]byte, 7)
	m.ReadAt(pa, buf)
	if string(buf) != "persist" {
		t.Fatalf("pinned frame data lost: %q", buf)
	}
	if err := as.Unpin(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if m.Allocated() != 0 {
		t.Fatalf("allocated = %d after unpin, want 0", m.Allocated())
	}
}

func TestUnpinUnderflow(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(PageSize, "buf")
	if err := as.Unpin(base, PageSize); err == nil {
		t.Fatal("unpin without pin accepted")
	}
}

func TestPinCountNested(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(PageSize, "buf")
	as.Pin(base, PageSize)
	as.Pin(base, PageSize)
	if as.PinCount(base) != 2 {
		t.Fatalf("pin count = %d, want 2", as.PinCount(base))
	}
	as.Unpin(base, PageSize)
	if as.PinCount(base) != 1 {
		t.Fatalf("pin count = %d, want 1", as.PinCount(base))
	}
}

type recordingSpy struct {
	invalidations []struct {
		as     *AddressSpace
		start  VirtAddr
		length int
	}
	forks []struct{ parent, child *AddressSpace }
	exits []*AddressSpace
}

func (r *recordingSpy) Invalidate(as *AddressSpace, start VirtAddr, length int) {
	r.invalidations = append(r.invalidations, struct {
		as     *AddressSpace
		start  VirtAddr
		length int
	}{as, start, length})
}
func (r *recordingSpy) Forked(p, c *AddressSpace) {
	r.forks = append(r.forks, struct{ parent, child *AddressSpace }{p, c})
}
func (r *recordingSpy) Exited(as *AddressSpace) { r.exits = append(r.exits, as) }

func TestVMASpyNotifications(t *testing.T) {
	_, as := newSpace(t, User)
	spy := &recordingSpy{}
	as.RegisterSpy(spy)
	base, _ := as.Mmap(4*PageSize, "buf")
	if err := as.Munmap(base, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if len(spy.invalidations) != 1 {
		t.Fatalf("invalidations = %d, want 1", len(spy.invalidations))
	}
	inv := spy.invalidations[0]
	if inv.start != base || inv.length != 2*PageSize {
		t.Errorf("invalidate range %#x+%d, want %#x+%d", inv.start, inv.length, base, 2*PageSize)
	}
	child, err := as.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	if len(spy.forks) != 1 || spy.forks[0].child != child {
		t.Fatal("fork not reported to spy")
	}
	as.Destroy()
	if len(spy.exits) != 1 {
		t.Fatal("exit not reported to spy")
	}
}

func TestSpyInvalidateBeforeTeardown(t *testing.T) {
	// The spy must still be able to resolve the range when notified
	// (GMKRC deregisters NIC translations using it).
	_, as := newSpace(t, User)
	resolved := false
	spy := &funcSpy{onInvalidate: func(s *AddressSpace, start VirtAddr, length int) {
		if _, err := s.Resolve(start, length); err != nil {
			panic("range already unmapped during Invalidate: " + err.Error())
		}
		resolved = true
	}}
	as.RegisterSpy(spy)
	base, _ := as.Mmap(PageSize, "b")
	if err := as.Munmap(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if !resolved {
		t.Fatal("spy did not run")
	}
}

type funcSpy struct {
	onInvalidate func(*AddressSpace, VirtAddr, int)
}

func (f *funcSpy) Invalidate(as *AddressSpace, s VirtAddr, l int) {
	if f.onInvalidate != nil {
		f.onInvalidate(as, s, l)
	}
}
func (f *funcSpy) Forked(p, c *AddressSpace) {}
func (f *funcSpy) Exited(as *AddressSpace)   {}

func TestUnregisterSpy(t *testing.T) {
	_, as := newSpace(t, User)
	spy := &recordingSpy{}
	as.RegisterSpy(spy)
	as.RegisterSpy(spy) // duplicate ignored
	as.UnregisterSpy(spy)
	base, _ := as.Mmap(PageSize, "b")
	as.Munmap(base, PageSize)
	if len(spy.invalidations) != 0 {
		t.Fatal("unregistered spy still notified")
	}
}

func TestForkCopiesData(t *testing.T) {
	_, as := newSpace(t, User)
	base, _ := as.Mmap(2*PageSize, "buf")
	as.WriteBytes(base, []byte("original"))
	child, err := as.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	// Same virtual address, different physical page, same contents.
	pp, _ := as.Translate(base)
	cp, err := child.Translate(base)
	if err != nil {
		t.Fatal(err)
	}
	if pp == cp {
		t.Fatal("fork shares physical frames (must copy)")
	}
	got, _ := child.ReadBytes(base, 8)
	if string(got) != "original" {
		t.Fatalf("child data = %q", got)
	}
	// Writes diverge.
	child.WriteBytes(base, []byte("changed!"))
	pgot, _ := as.ReadBytes(base, 8)
	if string(pgot) != "original" {
		t.Fatal("child write visible in parent")
	}
	if as.ID() == child.ID() {
		t.Fatal("fork reused ASID")
	}
}

func TestDistinctSpacesOverlapVirtualAddresses(t *testing.T) {
	// The paper's §4.2 point: the same virtual address in two spaces
	// maps to different physical locations, so an API taking bare
	// virtual addresses is ambiguous.
	m := mem.New(0)
	ids := NewIDSource()
	a := NewAddressSpace(m, ids, User, "a")
	b := NewAddressSpace(m, ids, User, "b")
	va1, _ := a.Mmap(PageSize, "x")
	va2, _ := b.Mmap(PageSize, "x")
	if va1 != va2 {
		t.Fatalf("expected identical base addresses, got %#x vs %#x", va1, va2)
	}
	p1, _ := a.Translate(va1)
	p2, _ := b.Translate(va2)
	if p1 == p2 {
		t.Fatal("distinct spaces share a frame")
	}
}

func TestDestroyedSpacePanics(t *testing.T) {
	_, as := newSpace(t, User)
	as.Destroy()
	defer func() {
		if recover() == nil {
			t.Error("Mmap on destroyed space should panic")
		}
	}()
	as.Mmap(PageSize, "x")
}

func TestGenerationBumps(t *testing.T) {
	_, as := newSpace(t, User)
	g0 := as.Generation()
	base, _ := as.Mmap(PageSize, "b")
	g1 := as.Generation()
	as.Munmap(base, PageSize)
	g2 := as.Generation()
	if !(g0 < g1 && g1 < g2) {
		t.Fatalf("generation not monotone: %d %d %d", g0, g1, g2)
	}
}

// Property: Resolve(va, n) always returns extents totalling n bytes, each
// extent within a page-aligned frame run, and gather(resolve) equals the
// bytes written through WriteBytes.
func TestResolveProperty(t *testing.T) {
	m, as := newSpace(t, User)
	base, _ := as.Mmap(32*PageSize, "buf")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := rng.Intn(20 * PageSize)
		n := rng.Intn(10*PageSize) + 1
		va := base + VirtAddr(off)
		data := make([]byte, n)
		rng.Read(data)
		if err := as.WriteBytes(va, data); err != nil {
			return false
		}
		xs, err := as.Resolve(va, n)
		if err != nil {
			return false
		}
		if mem.TotalLen(xs) != n {
			return false
		}
		return bytes.Equal(m.Gather(xs), data)
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random sequence of mmap/munmap keeps the page table and
// VMA list consistent: every mapped VMA page translates, every address
// outside all VMAs faults.
func TestMapUnmapConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mem.New(0)
		as := NewAddressSpace(m, NewIDSource(), User, "p")
		type region struct {
			base VirtAddr
			n    int
		}
		var live []region
		for op := 0; op < 40; op++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				n := rng.Intn(6) + 1
				b, err := as.Mmap(n*PageSize, "r")
				if err != nil {
					return false
				}
				live = append(live, region{b, n})
			} else {
				i := rng.Intn(len(live))
				r := live[i]
				if err := as.Munmap(r.base, r.n*PageSize); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, r := range live {
			for pg := 0; pg < r.n; pg++ {
				if _, err := as.Translate(r.base + VirtAddr(pg*PageSize)); err != nil {
					return false
				}
			}
			if as.FindVMA(r.base) == nil {
				return false
			}
		}
		// Frame accounting: exactly the live pages are allocated.
		want := 0
		for _, r := range live {
			want += r.n
		}
		return m.Allocated() == want
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}
