package hw

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
)

const us = time.Microsecond

// testRig builds a two-node cluster with a trivial echo-less protocol
// handler that records deliveries.
type testRig struct {
	env  *sim.Engine
	p    *Params
	c    *Cluster
	a, b *Node
	got  []*Message
	when []sim.Time
}

const protoTest uint8 = 9

func newRig(model LinkModel) *testRig {
	env := sim.NewEngine()
	p := DefaultParams()
	c := NewCluster(env, p, model)
	r := &testRig{env: env, p: p, c: c}
	r.a = c.AddNode("a")
	r.b = c.AddNode("b")
	r.b.NIC.Handle(protoTest, func(proc *sim.Proc, m *Message) {
		r.got = append(r.got, m)
		r.when = append(r.when, proc.Now())
	})
	return r
}

func TestInlineDeliveryCarriesBytes(t *testing.T) {
	r := newRig(PCIXD)
	payload := []byte("hello fabric")
	r.env.Spawn("send", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{
			Msg:    &Message{Dst: r.b.ID, Proto: protoTest, Kind: 1, Tag: 42, Header: []byte("hdr")},
			Inline: payload,
			PIO:    true,
		})
	})
	r.env.Run(0)
	if len(r.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(r.got))
	}
	m := r.got[0]
	if !bytes.Equal(m.Payload, payload) || string(m.Header) != "hdr" || m.Tag != 42 {
		t.Fatalf("message corrupted: %+v", m)
	}
	if m.Src != r.a.ID || m.Dst != r.b.ID {
		t.Fatalf("bad addressing: src=%d dst=%d", m.Src, m.Dst)
	}
}

func TestGatherDeliveryReadsHostMemory(t *testing.T) {
	r := newRig(PCIXD)
	as := r.a.NewUserSpace("app")
	va, err := as.Mmap(2*mem.PageSize, "buf")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	as.WriteBytes(va, data)
	xs, _ := as.Resolve(va, len(data))
	r.env.Spawn("send", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{
			Msg:    &Message{Dst: r.b.ID, Proto: protoTest},
			Gather: xs,
		})
	})
	r.env.Run(0)
	if len(r.got) != 1 || !bytes.Equal(r.got[0].Payload, data) {
		t.Fatal("gather payload corrupted")
	}
}

func TestTxDoneFiresBeforeDeliveryForGather(t *testing.T) {
	r := newRig(PCIXD)
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(mem.PageSize, "buf")
	xs, _ := as.Resolve(va, 1024)
	var txAt, rxAt sim.Time
	msg := &Message{Dst: r.b.ID, Proto: protoTest}
	r.env.Spawn("send", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{Msg: msg, Gather: xs})
		msg.TxDone.Wait(p)
		txAt = p.Now()
	})
	r.env.Run(0)
	rxAt = r.when[0]
	if txAt == 0 || rxAt == 0 {
		t.Fatal("signals did not fire")
	}
	if txAt >= rxAt {
		t.Fatalf("TxDone at %v not before delivery at %v", txAt, rxAt)
	}
}

func TestInOrderDeliveryPerSender(t *testing.T) {
	r := newRig(PCIXD)
	r.env.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			r.a.NIC.Send(&TxJob{
				Msg:    &Message{Dst: r.b.ID, Proto: protoTest, Tag: uint64(i)},
				Inline: make([]byte, 100*(i%7)),
				PIO:    true,
			})
		}
	})
	r.env.Run(0)
	if len(r.got) != 20 {
		t.Fatalf("delivered %d, want 20", len(r.got))
	}
	for i, m := range r.got {
		if m.Tag != uint64(i) {
			t.Fatalf("out of order: position %d has tag %d", i, m.Tag)
		}
	}
}

// One-way time for a minimal message should be a few microseconds —
// the NIC+wire component of the paper's latencies (host costs are
// charged by the drivers, not here).
func TestSmallMessageWireLatency(t *testing.T) {
	r := newRig(PCIXD)
	r.env.Spawn("send", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{
			Msg:    &Message{Dst: r.b.ID, Proto: protoTest},
			Inline: []byte{1},
			PIO:    true,
		})
	})
	r.env.Run(0)
	lat := r.when[0]
	// GM MCP path: fwSend 1.5 + link(17B) ~0.07 + prop 0.3 + rxDMA
	// (0.7+~0) + fwRecv 1.5 ≈ 4.1µs.
	if lat < 3*us || lat > 6*us {
		t.Fatalf("1-byte NIC+wire latency = %v, want 3–6µs", lat)
	}
}

// Large transfers must pipeline: total time ≈ link-bound, not the sum
// of DMA + link + DMA.
func TestLargeMessagePipelines(t *testing.T) {
	r := newRig(PCIXD)
	const size = 1 << 20
	as := r.a.NewUserSpace("app")
	va, _ := as.Mmap(size, "buf")
	xs, _ := as.Resolve(va, size)
	r.env.Spawn("send", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{Msg: &Message{Dst: r.b.ID, Proto: protoTest}, Gather: xs})
	})
	r.env.Run(0)
	lat := r.when[0]
	linkOnly := r.p.LinkTime(PCIXD, size)
	// Serialized DMA+link+DMA would be ≈ linkOnly + 2*size/533MB/s ≈
	// linkOnly + 3.9ms. Pipelined should be well under linkOnly*1.15.
	if lat > linkOnly*115/100 {
		t.Fatalf("1MB latency %v exceeds pipelined bound (link-only %v)", lat, linkOnly)
	}
	if lat < linkOnly {
		t.Fatalf("1MB latency %v below link occupancy %v (impossible)", lat, linkOnly)
	}
}

func TestXEModelIsFaster(t *testing.T) {
	oneWay := func(model LinkModel) sim.Time {
		r := newRig(model)
		const size = 1 << 20
		as := r.a.NewUserSpace("app")
		va, _ := as.Mmap(size, "buf")
		xs, _ := as.Resolve(va, size)
		r.env.Spawn("send", func(p *sim.Proc) {
			r.a.NIC.Send(&TxJob{Msg: &Message{Dst: r.b.ID, Proto: protoTest}, Gather: xs})
		})
		r.env.Run(0)
		return r.when[0]
	}
	xd, xe := oneWay(PCIXD), oneWay(PCIXE)
	ratio := float64(xd) / float64(xe)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("XD/XE 1MB ratio = %.2f, want ≈2 (250 vs 500 MB/s)", ratio)
	}
}

func TestFullDuplex(t *testing.T) {
	// Simultaneous transfers in both directions must not halve
	// bandwidth: links are full duplex (§3.1).
	r := newRig(PCIXD)
	r.a.NIC.Handle(protoTest, func(p *sim.Proc, m *Message) {
		r.got = append(r.got, m)
		r.when = append(r.when, p.Now())
	})
	const size = 1 << 20
	mk := func(n *Node) []mem.Extent {
		as := n.NewUserSpace("app")
		va, _ := as.Mmap(size, "buf")
		xs, _ := as.Resolve(va, size)
		return xs
	}
	xa, xb := mk(r.a), mk(r.b)
	r.env.Spawn("sa", func(p *sim.Proc) {
		r.a.NIC.Send(&TxJob{Msg: &Message{Dst: r.b.ID, Proto: protoTest}, Gather: xa})
	})
	r.env.Spawn("sb", func(p *sim.Proc) {
		r.b.NIC.Send(&TxJob{Msg: &Message{Dst: r.a.ID, Proto: protoTest}, Gather: xb})
	})
	r.env.Run(0)
	if len(r.when) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(r.when))
	}
	bound := r.p.LinkTime(PCIXD, size) * 115 / 100
	for _, w := range r.when {
		if w > bound {
			t.Fatalf("duplex transfer took %v, want < %v (no shared-medium serialization)", w, bound)
		}
	}
}

func TestTwoSendersShareOneReceiverLinkFairly(t *testing.T) {
	// Three nodes: a and c both send 1MB to b. The receiver's RxDMA is
	// the shared stage; both transfers should finish in about twice the
	// single-transfer time, not 1x (shared) and not >3x.
	env := sim.NewEngine()
	p := DefaultParams()
	c := NewCluster(env, p, PCIXD)
	na, nb, nc := c.AddNode("a"), c.AddNode("b"), c.AddNode("c")
	var when []sim.Time
	nb.NIC.Handle(protoTest, func(proc *sim.Proc, m *Message) { when = append(when, proc.Now()) })
	const size = 1 << 20
	send := func(n *Node) {
		as := n.NewUserSpace("app")
		va, _ := as.Mmap(size, "buf")
		xs, _ := as.Resolve(va, size)
		env.Spawn("s", func(proc *sim.Proc) {
			n.NIC.Send(&TxJob{Msg: &Message{Dst: nb.ID, Proto: protoTest}, Gather: xs})
		})
	}
	send(na)
	send(nc)
	env.Run(0)
	if len(when) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(when))
	}
	single := p.DMATime(PCIXD, size) // rx DMA is the contended stage
	last := when[1]
	if last < single*18/10 {
		t.Fatalf("contended completion %v too fast (single rxDMA %v)", last, single)
	}
}

func TestTransTable(t *testing.T) {
	tt := NewTransTable(3)
	k := func(i uint64) TransKey { return TransKey{AS: 1, VPN: i} }
	for i := uint64(0); i < 3; i++ {
		if err := tt.Insert(k(i), mem.PhysAddr(i*mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tt.Insert(k(9), 0); err == nil {
		t.Fatal("insert into full table succeeded")
	}
	// Re-inserting an existing key is allowed (update).
	if err := tt.Insert(k(1), mem.PhysAddr(7*mem.PageSize)); err != nil {
		t.Fatal(err)
	}
	if pa, ok := tt.Lookup(k(1)); !ok || pa != 7*mem.PageSize {
		t.Fatalf("lookup = %#x,%v", pa, ok)
	}
	tt.Remove(k(0))
	if _, ok := tt.Lookup(k(0)); ok {
		t.Fatal("removed key still present")
	}
	if tt.Used() != 2 {
		t.Fatalf("used = %d, want 2", tt.Used())
	}
	// ASID disambiguates: same VPN, different space.
	if err := tt.Insert(TransKey{AS: 2, VPN: 1}, mem.PhysAddr(8*mem.PageSize)); err != nil {
		t.Fatal(err)
	}
	if pa, _ := tt.Lookup(TransKey{AS: 1, VPN: 1}); pa != 7*mem.PageSize {
		t.Fatal("ASID collision in table")
	}
}

func TestCPUContention(t *testing.T) {
	env := sim.NewEngine()
	p := DefaultParams()
	c := NewCluster(env, p, PCIXD)
	n := c.AddNode("n")
	var finish []sim.Time
	// Three 1MB copies on a 2-core CPU: third must wait.
	for i := 0; i < 3; i++ {
		env.Spawn("cp", func(proc *sim.Proc) {
			n.CPU.Copy(proc, 1<<20)
			finish = append(finish, proc.Now())
		})
	}
	env.Run(0)
	one := p.CopyTime(1 << 20)
	if finish[0] != one || finish[1] != one {
		t.Fatalf("first two copies at %v/%v, want %v", finish[0], finish[1], one)
	}
	if finish[2] != 2*one {
		t.Fatalf("third copy at %v, want %v (queued)", finish[2], 2*one)
	}
	if n.CPU.CopyStats.N != 3 || n.CPU.CopyStats.Bytes != 3<<20 {
		t.Fatalf("copy stats %+v", n.CPU.CopyStats)
	}
}

func TestParamsCurveShapes(t *testing.T) {
	p := DefaultParams()
	// Fig 1(b): registration of 16 pages ≈ 16*3µs; dereg dominated by
	// 200µs base; copy of 64KB on P4 ≈ 60µs beats register+dereg.
	reg := p.RegTime(16)
	if reg < 45*us || reg > 55*us {
		t.Errorf("RegTime(16) = %v, want ≈49µs", reg)
	}
	if d := p.DeregTime(1); d < 200*us {
		t.Errorf("DeregTime(1) = %v, want ≥200µs", d)
	}
	cp := p.CopyTimeAt(64*1024, p.CopyBandwidthP4)
	rd := p.RegTime(16) + p.DeregTime(16)
	if cp >= rd {
		t.Errorf("64KB copy (%v) should beat register+dereg (%v)", cp, rd)
	}
	// Crossover: registration alone eventually beats copying (large,
	// reused buffers are what registration is for).
	bigPages := 256 // 1MB
	if p.RegTime(bigPages) < p.CopyTimeAt(bigPages*4096, p.CopyBandwidthP3) {
		// 256 pages: reg = 769µs, P3 copy = 1906µs: reg cheaper.
	} else {
		t.Errorf("1MB: registration (%v) should be cheaper than P3 copy (%v)",
			p.RegTime(bigPages), p.CopyTimeAt(bigPages*4096, p.CopyBandwidthP3))
	}
}

func TestFragCounts(t *testing.T) {
	p := DefaultParams()
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {1 << 20, 256},
	}
	for _, c := range cases {
		if got := p.Frags(c.n); got != c.want {
			t.Errorf("Frags(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTakeExtents(t *testing.T) {
	xs := []mem.Extent{{Addr: 0x1000, Len: 100}, {Addr: 0x3000, Len: 200}}
	head, tail := takeExtents(xs, 150)
	if mem.TotalLen(head) != 150 || mem.TotalLen(tail) != 150 {
		t.Fatalf("split 150: head=%v tail=%v", head, tail)
	}
	if tail[0].Addr != 0x3000+50 {
		t.Fatalf("tail starts at %#x", tail[0].Addr)
	}
	head, tail = takeExtents(xs, 300)
	if mem.TotalLen(head) != 300 || tail != nil {
		t.Fatalf("full take: head=%v tail=%v", head, tail)
	}
}
