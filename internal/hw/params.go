// Package hw models the hardware of the paper's experimental platform:
// dual-Xeon hosts and Myrinet NICs (PCI-XD 250 MB/s for §3–§5.2,
// PCI-XE 500 MB/s for §5.3) connected by a fabric.
//
// Every timing constant lives in Params, with its provenance in the
// paper noted. The constants were calibrated so that the *composed*
// latencies and bandwidths match the paper's reported measurements
// (GM user 6.7 µs one-way, MX 4.2 µs, +2 µs GM kernel penalty,
// 0.5 µs/side translation-lookup saving, 3 µs/page registration,
// 200 µs deregistration base, link saturation near 250/500 MB/s);
// see EXPERIMENTS.md for the resulting figure-by-figure comparison.
package hw

import (
	"time"
)

// LinkModel selects the Myrinet card generation.
type LinkModel int

const (
	// PCIXD is the 250 MB/s full-duplex card of §3.1 (LANai XP).
	PCIXD LinkModel = iota
	// PCIXE is the 500 MB/s two-link card of §5.3.
	PCIXE
)

// String names the card model.
func (m LinkModel) String() string {
	if m == PCIXE {
		return "PCI-XE"
	}
	return "PCI-XD"
}

// Params gathers every calibration constant of the simulation.
type Params struct {
	// ---- Host CPU (dual Xeon 2.6 GHz, §3.1) ----

	// CPUCores is the number of cores per node (dual-Xeon).
	CPUCores int
	// CopyBase is the fixed cost of a memory copy operation.
	CopyBase time.Duration
	// CopyBandwidth is host memcpy throughput in bytes/second. The
	// value makes Fig 1(b)'s copy curves and Fig 6's +17 % send-copy
	// removal come out right for the 2.6 GHz Xeon.
	CopyBandwidth float64
	// CopyBandwidthP3 and CopyBandwidthP4 are the two host models shown
	// in Fig 1(b) ("Copy (P3 1.2 GHz)" and "Copy (P4 2.6 GHz)").
	CopyBandwidthP3 float64
	CopyBandwidthP4 float64
	// PIOBase/PIOPerByte: programmed I/O from host to NIC doorbell
	// region (used by MX for small messages).
	PIOBase    time.Duration
	PIOPerByte time.Duration
	// Syscall is the user/kernel crossing cost ("about 400 ns", §5.3).
	Syscall time.Duration
	// ContextSwitch is a thread wakeup+dispatch (Sockets-GM's extra
	// dispatching kernel thread, §5.3).
	ContextSwitch time.Duration
	// PageAlloc is allocating one page-cache page.
	PageAlloc time.Duration
	// VFSOp is the cost of traversing the VFS layer for one call
	// (§3.2: ORFS slower than ORFA because of syscalls + VFS).
	VFSOp time.Duration
	// PinBase/PinUserPerPage/PinKernelPerPage/UnpinPerPage: pinning
	// pages in physical memory. Kernel pages are cheaper ("the page
	// locking overhead is lower", §5.1) because no user page-table
	// walk is needed.
	PinBase          time.Duration
	PinUserPerPage   time.Duration
	PinKernelPerPage time.Duration
	UnpinPerPage     time.Duration

	// ---- Memory registration (GM model, §2.2.2) ----

	// RegBase/RegPerPage: "3 µs overhead per page registration".
	RegBase    time.Duration
	RegPerPage time.Duration
	// DeregBase/DeregPerPage: "a 200 µs base for deregistration".
	DeregBase    time.Duration
	DeregPerPage time.Duration

	// ---- NIC (shared by GM and MX; LANai processor + DMA engines) ----

	// DMASetup is per-transfer DMA engine programming.
	DMASetup time.Duration
	// PCIBandwidthXD/XE is host<->NIC DMA throughput (PCI-X bus).
	PCIBandwidthXD float64
	PCIBandwidthXE float64
	// LinkBandwidthXD/XE is wire throughput: 250 MB/s (§3.1) and
	// 500 MB/s using two links (§5.3).
	LinkBandwidthXD float64
	LinkBandwidthXE float64
	// WireProp is per-fragment propagation + switch crossing.
	WireProp time.Duration
	// FragSize is the NIC's internal fragmentation granularity; DMA and
	// link stages pipeline at this grain.
	FragSize int
	// WireEnvelope is per-message header bytes on the wire (routing,
	// CRC) counted in link occupancy.
	WireEnvelope int
	// TransTableCap is the NIC translation-table capacity in page
	// entries ("the amount of page translations that may be stored in
	// the NIC is limited", §2.2.2).
	TransTableCap int

	// ---- GM driver (§2.2.2, §5.1: 6.7 µs user one-way, +2 µs kernel) ----

	GMHostSend      time.Duration // host-side send-path work, user space
	GMHostEvent     time.Duration // host-side completion handling
	GMKernelPenalty time.Duration // extra per host operation from a kernel port
	GMFwSend        time.Duration // firmware send processing per message
	GMFwRecv        time.Duration // firmware receive processing per message
	GMFwFrag        time.Duration // firmware per additional fragment
	GMLookup        time.Duration // translation-table lookup per message
	// (the 0.5 µs/side the physical-address primitives save, §3.3)
	GMSendTokens int // max outstanding sends per port (§4.1)

	// ---- MX driver (§4.2, §5.1: 4.2 µs one-way, kernel == user) ----

	MXHostSend   time.Duration
	MXHostEvent  time.Duration
	MXFwSend     time.Duration
	MXFwRecv     time.Duration
	MXFwFrag     time.Duration
	MXSmallMax   int           // <= this size: PIO ("Programmed I/O", §5.1)
	MXMediumMax  int           // <= this size: copy through bounce ("128 bytes to 32 kB")
	MXRendezvous time.Duration // RTS/CTS handshake extra, large messages
	// MXLargeOverhead models the immaturity of large-message processing
	// ("large message processing in MX is still under strong
	// development... current performance difference might disappear",
	// §5.1): a flat penalty making the >32 KB regime dip below the
	// extrapolated medium curve, as in Fig 6.
	MXLargeOverhead time.Duration

	// ---- Sockets layers (§5.3) ----

	// SockMXOverhead is the per-call protocol work of SOCKETS-MX above
	// raw MX (measured 1 µs including the ~400 ns syscall).
	SockMXOverhead time.Duration
	// SockGMDispatch is the extra dispatching-kernel-thread hop of
	// SOCKETS-GM per message, each way.
	SockGMDispatch time.Duration
	// SockGMOverhead is SOCKETS-GM's per-call protocol work.
	SockGMOverhead time.Duration

	// ---- TCP/IP over Gigabit Ethernet baseline ----

	TCPPerMessage time.Duration // stack traversal per packet
	TCPChecksum   float64       // bytes/s of checksum+fragmentation work
	TCPLinkBW     float64       // 125 MB/s GigE
	TCPLatency    time.Duration // base one-way wire+stack latency
}

// DefaultParams returns the calibrated parameter set described in
// DESIGN.md §5.
func DefaultParams() *Params {
	const (
		us = time.Microsecond
		ns = time.Nanosecond
	)
	return &Params{
		CPUCores:         2,
		CopyBase:         100 * ns,
		CopyBandwidth:    1.0e9,
		CopyBandwidthP3:  0.55e9,
		CopyBandwidthP4:  1.1e9,
		PIOBase:          200 * ns,
		PIOPerByte:       8 * ns,
		Syscall:          400 * ns,
		ContextSwitch:    6 * us,
		PageAlloc:        200 * ns,
		VFSOp:            500 * ns,
		PinBase:          200 * ns,
		PinUserPerPage:   300 * ns,
		PinKernelPerPage: 150 * ns,
		UnpinPerPage:     100 * ns,

		RegBase:      1 * us,
		RegPerPage:   3 * us,
		DeregBase:    200 * us,
		DeregPerPage: 100 * ns,

		DMASetup:        700 * ns,
		PCIBandwidthXD:  533e6,
		PCIBandwidthXE:  1066e6,
		LinkBandwidthXD: 250e6,
		LinkBandwidthXE: 500e6,
		WireProp:        300 * ns,
		FragSize:        4096,
		WireEnvelope:    16,
		TransTableCap:   4096,

		GMHostSend:      900 * ns,
		GMHostEvent:     100 * ns,
		GMKernelPenalty: 1000 * ns,
		GMFwSend:        1300 * ns,
		GMFwRecv:        1300 * ns,
		GMFwFrag:        300 * ns,
		GMLookup:        500 * ns,
		GMSendTokens:    16,

		MXHostSend:      500 * ns,
		MXHostEvent:     400 * ns,
		MXFwSend:        1000 * ns,
		MXFwRecv:        1000 * ns,
		MXFwFrag:        250 * ns,
		MXSmallMax:      128,
		MXMediumMax:     32 * 1024,
		MXRendezvous:    4 * us,
		MXLargeOverhead: 60 * us,

		SockMXOverhead: 600 * ns,
		SockGMDispatch: 4 * us,
		SockGMOverhead: 1 * us,

		TCPPerMessage: 15 * us,
		TCPChecksum:   0.4e9,
		TCPLinkBW:     125e6,
		TCPLatency:    25 * us,
	}
}

// btime converts a byte count at a bytes/second rate into a duration.
func btime(bytes int, bw float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * 1e9)
}

// CopyTime is the host cost of copying n bytes (Fig 1(b) copy curves).
func (p *Params) CopyTime(n int) time.Duration { return p.CopyBase + btime(n, p.CopyBandwidth) }

// CopyTimeAt is CopyTime with an explicit bandwidth (P3/P4 curves).
func (p *Params) CopyTimeAt(n int, bw float64) time.Duration { return p.CopyBase + btime(n, bw) }

// PIOTime is the host cost of pushing n bytes to the NIC by PIO.
func (p *Params) PIOTime(n int) time.Duration {
	return p.PIOBase + time.Duration(n)*p.PIOPerByte
}

// RegTime is the cost of registering n pages (GM model, Fig 1(b)).
func (p *Params) RegTime(pages int) time.Duration {
	return p.RegBase + time.Duration(pages)*p.RegPerPage
}

// DeregTime is the cost of deregistering n pages (Fig 1(b)).
func (p *Params) DeregTime(pages int) time.Duration {
	return p.DeregBase + time.Duration(pages)*p.DeregPerPage
}

// PinTime is the cost of pinning n pages from user or kernel context.
func (p *Params) PinTime(pages int, kernel bool) time.Duration {
	per := p.PinUserPerPage
	if kernel {
		per = p.PinKernelPerPage
	}
	return p.PinBase + time.Duration(pages)*per
}

// UnpinTime is the cost of unpinning n pages.
func (p *Params) UnpinTime(pages int) time.Duration {
	return time.Duration(pages) * p.UnpinPerPage
}

// DMATime is one DMA transfer of n bytes over the PCI bus of the model.
func (p *Params) DMATime(m LinkModel, n int) time.Duration {
	bw := p.PCIBandwidthXD
	if m == PCIXE {
		bw = p.PCIBandwidthXE
	}
	return p.DMASetup + btime(n, bw)
}

// LinkTime is wire occupancy for n bytes.
func (p *Params) LinkTime(m LinkModel, n int) time.Duration {
	bw := p.LinkBandwidthXD
	if m == PCIXE {
		bw = p.LinkBandwidthXE
	}
	return btime(n, bw)
}

// LinkBandwidth returns the wire bandwidth of the model in bytes/s.
func (p *Params) LinkBandwidth(m LinkModel) float64 {
	if m == PCIXE {
		return p.LinkBandwidthXE
	}
	return p.LinkBandwidthXD
}

// Frags returns the number of NIC fragments for n wire bytes.
func (p *Params) Frags(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + p.FragSize - 1) / p.FragSize
}
