package hw

// This file models a node: CPUs with syscall/copy/VFS cost models,
// physical memory, the kernel address space, and the per-node NIC.
import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// NodeID identifies a node in the cluster fabric.
type NodeID int

// Cluster is a set of nodes connected by a Myrinet fabric, sharing one
// simulation engine and one parameter set.
type Cluster struct {
	Env    *sim.Engine
	Params *Params
	Model  LinkModel
	nodes  []*Node
}

// NewCluster creates an empty cluster with the given link model.
func NewCluster(env *sim.Engine, params *Params, model LinkModel) *Cluster {
	return &Cluster{Env: env, Params: params, Model: model}
}

// AddNode creates a node with its own memory, CPU, kernel address space
// and NIC, and attaches it to the fabric.
func (c *Cluster) AddNode(name string) *Node {
	id := NodeID(len(c.nodes))
	n := &Node{
		ID:      id,
		Name:    name,
		Cluster: c,
		Mem:     mem.New(0),
		IDs:     vm.NewIDSource(),
	}
	n.Kernel = vm.NewAddressSpace(n.Mem, n.IDs, vm.Kernel, name+"-kernel")
	n.CPU = newCPU(c.Env, c.Params, name)
	n.NIC = newNIC(n, c.Model)
	c.nodes = append(c.nodes, n)
	return n
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		panic(fmt.Sprintf("hw: no node %d", id))
	}
	return c.nodes[id]
}

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node is one cluster host: memory, CPU, kernel address space, NIC.
type Node struct {
	ID      NodeID
	Name    string
	Cluster *Cluster
	Mem     *mem.Memory
	CPU     *CPU
	NIC     *NIC
	Kernel  *vm.AddressSpace
	IDs     *vm.IDSource

	// FabricPool holds the node's shared fabric buffer pool
	// (*fabric.Pool, stored untyped to avoid the import cycle). Keeping
	// it on the node — not in a package-global registry — lets a
	// finished simulation's whole object graph be collected.
	FabricPool any

	drivers map[uint8]any
}

// SetDriver records the driver instance attached for a protocol number
// (so peers can reach, e.g., the sending side's GM state for ACKs).
func (n *Node) SetDriver(proto uint8, d any) {
	if n.drivers == nil {
		n.drivers = make(map[uint8]any)
	}
	n.drivers[proto] = d
}

// Driver returns the driver attached for a protocol, or nil.
func (n *Node) Driver(proto uint8) any { return n.drivers[proto] }

// NewUserSpace creates a user address space on this node (one simulated
// process).
func (n *Node) NewUserSpace(name string) *vm.AddressSpace {
	return vm.NewAddressSpace(n.Mem, n.IDs, vm.User, name)
}

// CPU models the host processor(s) as a capacity-limited resource with
// the paper-calibrated cost model. Every host-side cost — copies, page
// pinning, syscalls, VFS traversal — occupies a core for its duration,
// so CPU contention between the communication stack and computation
// (the paper's motivation for zero-copy, §2.1) is observable.
type CPU struct {
	res *sim.Resource
	p   *Params

	// CopyStats accumulates all memcpy work for "CPU cycles wasted on
	// copies" accounting in the experiments.
	CopyStats sim.Counter
}

func newCPU(env *sim.Engine, p *Params, name string) *CPU {
	return &CPU{res: sim.NewResource(env, name+"-cpu", p.CPUCores), p: p}
}

// Resource exposes the underlying resource (for utilization stats).
func (c *CPU) Resource() *sim.Resource { return c.res }

// Compute occupies a core for d (application computation or
// miscellaneous driver work).
func (c *CPU) Compute(p *sim.Proc, d sim.Time) { c.res.Use(p, d) }

// Copy charges a host memory copy of n bytes.
func (c *CPU) Copy(p *sim.Proc, n int) {
	c.CopyStats.Add(n)
	c.res.Use(p, c.p.CopyTime(n))
}

// PIO charges a programmed-I/O push of n bytes to the NIC.
func (c *CPU) PIO(p *sim.Proc, n int) { c.res.Use(p, c.p.PIOTime(n)) }

// Syscall charges one user/kernel crossing.
func (c *CPU) Syscall(p *sim.Proc) { c.res.Use(p, c.p.Syscall) }

// VFS charges one VFS-layer traversal.
func (c *CPU) VFS(p *sim.Proc) { c.res.Use(p, c.p.VFSOp) }

// PageAlloc charges allocating one page-cache page.
func (c *CPU) PageAlloc(p *sim.Proc) { c.res.Use(p, c.p.PageAlloc) }

// ContextSwitch charges one thread dispatch (Sockets-GM's extra thread).
func (c *CPU) ContextSwitch(p *sim.Proc) { c.res.Use(p, c.p.ContextSwitch) }

// Pin charges pinning n pages (kernel=true for kernel memory, which is
// cheaper — §5.1).
func (c *CPU) Pin(p *sim.Proc, pages int, kernel bool) {
	c.res.Use(p, c.p.PinTime(pages, kernel))
}

// Unpin charges unpinning n pages.
func (c *CPU) Unpin(p *sim.Proc, pages int) { c.res.Use(p, c.p.UnpinTime(pages)) }
