package hw

// This file models the NIC: firmware processors, DMA engines, the
// fragment pipeline that moves real bytes between host memory and the
// link, and the translation table backing registered virtual memory.
import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Message is one message on the Myrinet fabric. Payload carries real
// bytes; WireLen (envelope + header + payload) governs timing. Fields
// Proto/Kind/Tag/Header are interpreted by the drivers (GM, MX).
type Message struct {
	Src, Dst NodeID
	Proto    uint8  // registered driver (protocol) on the destination
	Kind     uint8  // driver-defined message kind
	Tag      uint64 // driver-defined (GM port / MX match bits)
	Seq      uint64 // assigned by the sending NIC
	Header   []byte // small control payload
	Payload  []byte // bulk data (gathered at send DMA time)

	// TxDone fires when the last fragment has left the sender's DMA
	// engine (local send completion — the buffer may be reused).
	TxDone *sim.Signal

	wireLen int
	frags   int
	arrived int
}

// WireLen returns the total on-wire byte count used for timing.
func (m *Message) WireLen() int { return m.wireLen }

// PayloadLen returns len(Header) + len(Payload) — the logical size.
func (m *Message) PayloadLen() int { return len(m.Header) + len(m.Payload) }

// TxJob describes a send handed to the NIC by a driver. Exactly one of
// Gather or Inline provides the payload: Gather is a zero-copy DMA from
// host physical memory (bytes are read at DMA time, so late stores —
// the hazard registration/pinning exists to prevent — are faithfully
// visible); Inline is data already pushed into NIC memory by the host
// (PIO, or a bounce-buffer copy the driver charged separately).
type TxJob struct {
	Msg     *Message
	Gather  []mem.Extent // host memory to DMA from (nil for inline)
	Inline  []byte       // payload already in NIC SRAM
	FwExtra sim.Time     // extra firmware work (e.g. GM translation lookup)
	PIO     bool         // no DMA stage (payload arrived by PIO)
}

// Handler is a driver's receive entry point. It runs in the NIC's
// receive-pump process after all fragment timing has been charged; it
// must scatter/deliver data and fire events quickly (host-side heavy
// work belongs in host processes, not here).
type Handler func(p *sim.Proc, m *Message)

// NIC models one Myrinet interface: a firmware processor (LANai), send
// and receive DMA engines, a transmit link, and a translation table for
// registered memory. Stages are separate resources connected by pump
// processes, so fragments of a large message pipeline through
// DMA→link→DMA exactly like cut-through hardware, and distinct messages
// queue against each other realistically.
type NIC struct {
	node  *Node
	p     *Params
	model LinkModel

	Firmware *sim.Resource
	TxDMA    *sim.Resource
	RxDMA    *sim.Resource
	Link     *sim.Resource

	Table *TransTable

	txq      *sim.Chan[*TxJob]
	linkq    *sim.Chan[*frag]
	rxq      *sim.Chan[*frag]
	handlers map[uint8]Handler
	seq      uint64
	fragFree []*frag // recycled fragment records (see getFrag)

	// Fault state (see Kill, StallUntil): a dead NIC drops every frame
	// it would transmit or deliver; a stalled one delays its pumps.
	dead       bool
	stallUntil sim.Time

	// Stats
	TxMsgs, RxMsgs sim.Counter

	// Dropped counts frames discarded by fault injection (this NIC dead
	// at transmit or delivery time).
	Dropped sim.Counter
}

type frag struct {
	msg  *Message
	idx  int
	size int  // wire bytes of this fragment
	src  *NIC // owner; the record recycles to src's pool when done
	dst  *NIC // destination NIC, set by linkPump at transmit time
	// deliver hands the fragment to dst after the wire delay. Built
	// once per record and reused across recycles, so the per-fragment
	// delivery path allocates neither a closure nor a frag in steady
	// state.
	deliver func()
}

// getFrag takes a fragment record from the transmit pool.
//
// allocfree
func (n *NIC) getFrag(m *Message, idx, size int) *frag {
	var f *frag
	if k := len(n.fragFree); k > 0 {
		f = n.fragFree[k-1]
		n.fragFree = n.fragFree[:k-1]
	} else {
		//analyze:allow allocfree pool-miss cold path, record recycled forever after
		f = &frag{src: n}
		//analyze:allow allocfree built once per record, reused across recycles
		f.deliver = func() {
			// Death is checked at delivery time: a frame already on the
			// wire when the destination dies hits a dead card and
			// vanishes.
			if f.dst.dead {
				f.dst.Dropped.Add(f.size)
				f.src.putFrag(f)
				return
			}
			f.dst.rxq.Send(f)
		}
	}
	f.msg, f.idx, f.size = m, idx, size
	return f
}

// putFrag recycles a fragment record nobody references anymore.
//
// allocfree
func (n *NIC) putFrag(f *frag) {
	f.msg, f.dst = nil, nil
	n.fragFree = append(n.fragFree, f)
}

func newNIC(node *Node, model LinkModel) *NIC {
	env := node.Cluster.Env
	p := node.Cluster.Params
	n := &NIC{
		node:     node,
		p:        p,
		model:    model,
		Firmware: sim.NewResource(env, node.Name+"-lanai", 1),
		TxDMA:    sim.NewResource(env, node.Name+"-txdma", 1),
		RxDMA:    sim.NewResource(env, node.Name+"-rxdma", 1),
		Link:     sim.NewResource(env, node.Name+"-txlink", 1),
		Table:    NewTransTable(p.TransTableCap),
		txq:      sim.NewChan[*TxJob](env),
		linkq:    sim.NewChan[*frag](env),
		rxq:      sim.NewChan[*frag](env),
		handlers: make(map[uint8]Handler),
	}
	env.Spawn(node.Name+"-nic-tx", n.txPump)
	env.Spawn(node.Name+"-nic-link", n.linkPump)
	env.Spawn(node.Name+"-nic-rx", n.rxPump)
	return n
}

// Node returns the owning node.
func (n *NIC) Node() *Node { return n.node }

// Model returns the card generation.
func (n *NIC) Model() LinkModel { return n.model }

// ---- fault injection ----
//
// The fault surface is deliberately at the NIC: killing or stalling a
// node's interface is what a pulled cable, a crashed host or a wedged
// firmware looks like to the rest of the cluster — frames stop, and
// nothing above the link layer gets to say goodbye. Drivers observe
// faults only as silence (plus Dead, which models their own
// dead-peer detection, e.g. GM's send timeouts).

// Dead reports whether the NIC has been killed.
func (n *NIC) Dead() bool { return n.dead }

// Kill marks the NIC dead, effective immediately: frames in flight to
// or from it are dropped at their next pipeline stage, and every later
// transmit or delivery is discarded. Host processes are untouched —
// exactly the failure mode where a server machine keeps running but
// falls off the fabric.
func (n *NIC) Kill() { n.dead = true }

// KillAfter schedules Kill after virtual delay d — the scheduled-fault
// entry point the degraded-operation experiments use.
func (n *NIC) KillAfter(d sim.Time) {
	n.node.Cluster.Env.After(d, n.Kill)
}

// Revive clears a Kill. Frames dropped while dead stay dropped; the
// NIC simply starts forwarding again (the driver-visible state on both
// sides is whatever survived the outage).
func (n *NIC) Revive() { n.dead = false }

// StallFor freezes the NIC's transmit and receive pumps until now+d
// (extending any stall already in effect): frames queue and are
// delivered late rather than dropped — the transient-fault analogue of
// Kill.
func (n *NIC) StallFor(d sim.Time) {
	until := n.node.Cluster.Env.Now() + d
	if until > n.stallUntil {
		n.stallUntil = until
	}
}

// stall parks the pump process until any stall in effect has passed.
func (n *NIC) stall(p *sim.Proc) {
	for n.stallUntil > p.Now() {
		p.Sleep(n.stallUntil - p.Now())
	}
}

// Handle registers the receive handler for a protocol number. Drivers
// call this once at attach time.
func (n *NIC) Handle(proto uint8, h Handler) {
	if n.handlers[proto] != nil {
		panic(fmt.Sprintf("hw: duplicate handler for proto %d on %s", proto, n.node.Name))
	}
	n.handlers[proto] = h
}

// Send enqueues a transmit job. It returns immediately (the caller has
// already charged its host-side costs); j.Msg.TxDone fires when the
// payload has fully left host memory.
func (n *NIC) Send(j *TxJob) {
	m := j.Msg
	m.Src = n.node.ID
	m.Seq = n.seq
	n.seq++
	if m.TxDone == nil {
		m.TxDone = sim.NewSignal(n.node.Cluster.Env)
	}
	if j.Inline != nil && j.Gather != nil {
		panic("hw: TxJob with both Inline and Gather")
	}
	payload := len(j.Inline) + mem.TotalLen(j.Gather)
	m.wireLen = n.p.WireEnvelope + len(m.Header) + payload
	m.frags = n.p.Frags(m.wireLen)
	n.TxMsgs.Add(payload)
	n.txq.Send(j)
}

// txPump is the firmware send loop: per message, charge firmware
// processing; per fragment, run the send DMA engine; hand fragments to
// the link pump.
func (n *NIC) txPump(p *sim.Proc) {
	for {
		j := n.txq.Recv(p)
		m := j.Msg
		n.stall(p)
		if n.dead {
			// The payload never leaves, but the local buffer is free —
			// senders must not strand on TxDone for a frame the dead
			// card silently ate.
			n.Dropped.Add(m.wireLen)
			m.TxDone.Fire()
			continue
		}
		n.Firmware.Use(p, n.p.FwSendTime(n.isMX(m.Proto), m.frags)+j.FwExtra)
		gather := j.Gather != nil
		total := mem.TotalLen(j.Gather) + len(j.Inline)
		if !gather {
			// Inline payload (PIO or bounce copy): the application
			// buffer is already free.
			m.Payload = j.Inline
			m.TxDone.Fire()
		} else {
			// One payload buffer per message, gathered into fragment by
			// fragment below (a per-fragment Gather would allocate a
			// slice per 4 KB of every zero-copy send).
			m.Payload = make([]byte, 0, total)
		}
		cursor := gatherCursor{xs: j.Gather}
		got := 0
		for f := 0; f < m.frags; f++ {
			if n.dead {
				// The card died mid-message: the remaining fragments
				// never leave, and the receiver's partial message can
				// never complete. The local buffer is free regardless.
				for g := f; g < m.frags; g++ {
					n.Dropped.Add(n.fragBytes(m, g))
				}
				m.TxDone.Fire()
				break
			}
			fb := n.fragBytes(m, f)
			// Payload bytes carried by this fragment (the envelope and
			// header occupy the front of fragment 0).
			want := fb
			if f == 0 {
				want -= n.p.WireEnvelope + len(m.Header)
				if want < 0 {
					want = 0
				}
			}
			if want > total-got {
				want = total - got
			}
			if !j.PIO {
				// Both zero-copy (gather) and bounce (inline) payloads
				// cross the PCI bus fragment by fragment, pipelining
				// with the link stage like the real cut-through MCP.
				n.TxDMA.Use(p, n.p.DMATime(n.model, want))
			}
			if gather && want > 0 {
				// Bytes leave host memory now: stores after this point
				// are not part of the message (the hazard pinning and
				// registration exist to prevent).
				m.Payload = cursor.appendTo(n.node.Mem, m.Payload, want)
			}
			got += want
			n.linkq.Send(n.getFrag(m, f, fb))
			if gather && f == m.frags-1 {
				m.TxDone.Fire()
			}
		}
	}
}

// fragBytes returns the wire size of fragment f of m.
func (n *NIC) fragBytes(m *Message, f int) int {
	if f < m.frags-1 {
		return n.p.FragSize
	}
	last := m.wireLen - (m.frags-1)*n.p.FragSize
	if last <= 0 {
		last = m.wireLen
	}
	return last
}

// gatherCursor walks a gather list front to back without reslicing
// it: the zero-allocation replacement for splitting the list per
// fragment (takeExtents) and per-fragment Gather buffers.
type gatherCursor struct {
	xs  []mem.Extent
	idx int // current extent
	off int // bytes consumed of xs[idx]
}

// appendTo reads the next want bytes of the gather list into dst
// (whose capacity the caller sized for the whole payload).
func (g *gatherCursor) appendTo(m *mem.Memory, dst []byte, want int) []byte {
	for want > 0 {
		if g.idx >= len(g.xs) {
			panic(fmt.Sprintf("hw: gather short by %d bytes", want))
		}
		x := g.xs[g.idx]
		take := x.Len - g.off
		if take > want {
			take = want
		}
		pos := len(dst)
		dst = dst[:pos+take]
		m.ReadAt(x.Addr+mem.PhysAddr(g.off), dst[pos:])
		g.off += take
		if g.off == x.Len {
			g.idx++
			g.off = 0
		}
		want -= take
	}
	return dst
}

// takeExtents splits want bytes off the front of xs.
func takeExtents(xs []mem.Extent, want int) (head, tail []mem.Extent) {
	for i, x := range xs {
		if want == 0 {
			return head, xs[i:]
		}
		if x.Len <= want {
			head = append(head, x)
			want -= x.Len
			continue
		}
		head = append(head, mem.Extent{Addr: x.Addr, Len: want})
		tail = append([]mem.Extent{{Addr: x.Addr + mem.PhysAddr(want), Len: x.Len - want}}, xs[i+1:]...)
		return head, tail
	}
	if want != 0 {
		panic(fmt.Sprintf("hw: takeExtents short by %d bytes", want))
	}
	return head, nil
}

// linkPump serializes fragments onto the wire and delivers them to the
// destination NIC after the propagation delay.
func (n *NIC) linkPump(p *sim.Proc) {
	env := n.node.Cluster.Env
	for {
		f := n.linkq.Recv(p)
		n.stall(p)
		if n.dead {
			// Frames still queued for the wire when the card died.
			n.Dropped.Add(f.size)
			n.putFrag(f)
			continue
		}
		n.Link.Use(p, n.p.LinkTime(n.model, f.size))
		f.dst = n.node.Cluster.Node(f.msg.Dst).NIC
		env.AfterDetached(n.p.WireProp, f.deliver)
	}
}

// rxPump drains arriving fragments: per fragment, run the receive DMA
// engine; on the last fragment of a message, charge receive firmware
// processing and invoke the driver handler.
func (n *NIC) rxPump(p *sim.Proc) {
	for {
		f := n.rxq.Recv(p)
		n.stall(p)
		if n.dead {
			n.Dropped.Add(f.size)
			f.src.putFrag(f)
			continue
		}
		// Copy what the rest of the iteration needs and recycle the
		// record before yielding in RxDMA (the source NIC may reuse it
		// for a later fragment meanwhile).
		m, size := f.msg, f.size
		f.src.putFrag(f)
		n.RxDMA.Use(p, n.p.DMATime(n.model, size))
		m.arrived++
		if m.arrived < m.frags {
			continue
		}
		n.Firmware.Use(p, n.p.FwRecvTime(n.isMX(m.Proto), m.frags))
		n.RxMsgs.Add(m.PayloadLen())
		h := n.handlers[m.Proto]
		if h == nil {
			panic(fmt.Sprintf("hw: node %s received proto %d with no handler", n.node.Name, m.Proto))
		}
		h(p, m)
	}
}

// Protocol numbers. Firmware processing costs differ between the GM and
// MX MCPs, so the NIC needs to know which family a message belongs to.
const (
	ProtoGM  uint8 = 1
	ProtoMX  uint8 = 2
	ProtoTCP uint8 = 3
)

func (n *NIC) isMX(proto uint8) bool { return proto == ProtoMX }

// FwSendTime is firmware send processing for a message of the given
// fragment count under the GM or MX MCP.
func (p *Params) FwSendTime(mx bool, frags int) sim.Time {
	if mx {
		return p.MXFwSend + sim.Time(frags-1)*p.MXFwFrag
	}
	return p.GMFwSend + sim.Time(frags-1)*p.GMFwFrag
}

// FwRecvTime is firmware receive processing.
func (p *Params) FwRecvTime(mx bool, frags int) sim.Time {
	if mx {
		return p.MXFwRecv + sim.Time(frags-1)*p.MXFwFrag
	}
	return p.GMFwRecv + sim.Time(frags-1)*p.GMFwFrag
}

// TransTable is the NIC's page-translation table: the registered-memory
// state the paper's §2.2 describes. Entries map (ASID, virtual page) to
// a physical frame address. Capacity is bounded; GM registration fails
// when full (forcing deregistration, hence the pin-down cache).
type TransTable struct {
	capacity int
	entries  map[TransKey]mem.PhysAddr
}

// TransKey identifies one registered page. The ASID field is the
// address-space descriptor GMKRC packs into the upper bits of NIC
// pointers to disambiguate processes sharing a kernel port (§3.2).
type TransKey struct {
	AS  uint32
	VPN uint64
}

// NewTransTable returns an empty table with the given entry capacity.
func NewTransTable(capacity int) *TransTable {
	return &TransTable{capacity: capacity, entries: make(map[TransKey]mem.PhysAddr)}
}

// Used returns the number of live entries.
func (t *TransTable) Used() int { return len(t.entries) }

// Capacity returns the table capacity.
func (t *TransTable) Capacity() int { return t.capacity }

// Insert adds a page translation. It fails when the table is full.
func (t *TransTable) Insert(k TransKey, pa mem.PhysAddr) error {
	if _, ok := t.entries[k]; !ok && len(t.entries) >= t.capacity {
		return fmt.Errorf("hw: NIC translation table full (%d entries)", t.capacity)
	}
	t.entries[k] = pa
	return nil
}

// Remove drops a translation (no-op if absent).
func (t *TransTable) Remove(k TransKey) { delete(t.entries, k) }

// Lookup returns the physical address for a registered page.
func (t *TransTable) Lookup(k TransKey) (mem.PhysAddr, bool) {
	pa, ok := t.entries[k]
	return pa, ok
}
