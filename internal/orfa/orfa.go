// Package orfa implements ORFA, the paper's user-space remote
// file-access client (§3.1): a library that intercepts file calls in
// user space and forwards them to the server, with no system calls, no
// VFS, no page cache — and therefore also no metadata caching, the
// weakness that motivated moving into the kernel (ORFS).
//
// Data transfers go directly between the application's user buffers
// and the network (the library is inherently "O_DIRECT"), which is why
// ORFA's large-transfer throughput slightly exceeds ORFS's (no
// syscall/VFS overhead, Fig 3(b)) while its metadata operations pay a
// full round-trip every time.
package orfa

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Lib is one process's ORFA library instance.
//
// Over a windowed rfsrv.Session the library pipelines what it can
// without acquiring state the design forbids (no caches): large reads
// split into chunks issued concurrently through the window, large
// writes chunk through the window inside Session.Write, and
// ReaddirAttrs packs one getattr per entry into a single combined
// request message (the "ls -l" pattern, a full round trip per entry
// on the synchronous protocol).
type Lib struct {
	cl   rfsrv.Client
	sess rfsrv.Async // non-nil when cl pipelines with window > 1
	as   *vm.AddressSpace
	fds  map[int]*file
	next int

	// MetaRPCs counts metadata round-trips (every walk component —
	// ORFA has no dentry cache).
	MetaRPCs sim.Counter
}

// readChunk is the split granularity of pipelined large reads.
const readChunk = rfsrv.MaxWriteChunk

type file struct {
	ino  kernel.InodeID
	off  int64
	size int64
}

// New creates the library for a process with address space as.
func New(cl rfsrv.Client, as *vm.AddressSpace) *Lib {
	l := &Lib{cl: cl, as: as, fds: make(map[int]*file), next: 3}
	if s, ok := cl.(rfsrv.Async); ok && s.Window() > 1 {
		l.sess = s
	}
	return l
}

// walk resolves path (always from the root — no caching) to attributes.
func (l *Lib) walk(p *sim.Proc, path string) (kernel.Attr, error) {
	cur := kernel.Attr{Ino: 0, Kind: kernel.Directory}
	resp, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: 0})
	if err != nil {
		return kernel.Attr{}, err
	}
	cur = resp.Attr
	for _, comp := range splitPath(path) {
		if cur.Kind != kernel.Directory {
			return kernel.Attr{}, kernel.ErrNotDir
		}
		resp, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpLookup, Ino: cur.Ino, Name: comp})
		if err != nil {
			return kernel.Attr{}, err
		}
		cur = resp.Attr
	}
	return cur, nil
}

func (l *Lib) meta(p *sim.Proc, req *rfsrv.Req) (*rfsrv.Resp, error) {
	l.MetaRPCs.Add(1)
	return l.cl.Meta(p, req)
}

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

func splitDir(path string) (string, string) {
	path = strings.TrimSuffix(path, "/")
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return "/", path
	}
	return path[:i], path[i+1:]
}

// Open opens an existing file and returns a descriptor.
func (l *Lib) Open(p *sim.Proc, path string) (int, error) {
	a, err := l.walk(p, path)
	if err != nil {
		return -1, err
	}
	if a.Kind == kernel.Directory {
		return -1, kernel.ErrIsDir
	}
	fd := l.next
	l.next++
	l.fds[fd] = &file{ino: a.Ino, size: a.Size}
	return fd, nil
}

// Create creates (or opens, if present) a file.
func (l *Lib) Create(p *sim.Proc, path string) (int, error) {
	dirPath, name := splitDir(path)
	dir, err := l.walk(p, dirPath)
	if err != nil {
		return -1, err
	}
	resp, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dir.Ino, Name: name})
	if err == kernel.ErrExists {
		return l.Open(p, path)
	}
	if err != nil {
		return -1, err
	}
	fd := l.next
	l.next++
	l.fds[fd] = &file{ino: resp.Attr.Ino, size: resp.Attr.Size}
	return fd, nil
}

func (l *Lib) file(fd int) (*file, error) {
	f := l.fds[fd]
	if f == nil {
		return nil, fmt.Errorf("orfa: bad file descriptor %d", fd)
	}
	return f, nil
}

// Read reads up to n bytes into the process buffer at va, directly from
// the network (zero OS involvement). Over a windowed session, reads
// larger than one chunk split into per-chunk requests issued
// concurrently — each lands in its own slice of the user buffer, so
// the transfers pipeline with zero extra copies.
func (l *Lib) Read(p *sim.Proc, fd int, va vm.VirtAddr, n int) (int, error) {
	f, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	if l.sess != nil && n > readChunk {
		got, err := l.readPipelined(p, f, va, n)
		if err != nil {
			return 0, err
		}
		f.off += int64(got)
		return got, nil
	}
	resp, err := l.cl.Read(p, f.ino, f.off, core.Of(core.UserSeg(l.as, va, n)))
	if err != nil {
		return 0, err
	}
	f.off += int64(resp.N)
	return int(resp.N), nil
}

// readPipelined issues the chunks of one large read through the
// session window and retires them in order, stopping at a short chunk
// (EOF).
func (l *Lib) readPipelined(p *sim.Proc, f *file, va vm.VirtAddr, n int) (int, error) {
	type slot struct {
		pd   rfsrv.PendingOp
		want int
	}
	var inflight []slot
	total := 0
	short := false
	retire := func(s slot) error {
		resp, err := s.pd.Wait(p)
		if err != nil {
			return err
		}
		if !short {
			total += int(resp.N)
			if int(resp.N) < s.want {
				short = true // EOF inside this chunk; later chunks are empty
			}
		}
		return nil
	}
	// drain retires leftover in-flight chunks on an error path, so
	// their window slots return to the session instead of leaking.
	drain := func(rest []slot) {
		for _, s := range rest {
			s.pd.Wait(p)
		}
	}
	for issued := 0; issued < n; {
		chunk := n - issued
		if chunk > readChunk {
			chunk = readChunk
		}
		// Retire oldest-first until the chunk's target window(s) have
		// room — over a striped cluster one chunk may span several
		// servers, and blocking inside StartRead with retired slots in
		// our own hands would deadlock the pipeline.
		for len(inflight) > 0 &&
			(len(inflight) == l.sess.Window() || !l.sess.CanStart(f.ino, f.off+int64(issued), chunk)) {
			s := inflight[0]
			inflight = inflight[1:]
			if err := retire(s); err != nil {
				drain(inflight)
				return total, err
			}
		}
		pd, err := l.sess.StartRead(p, f.ino, f.off+int64(issued),
			core.Of(core.UserSeg(l.as, va+vm.VirtAddr(issued), chunk)))
		if err != nil {
			drain(inflight)
			return total, err
		}
		inflight = append(inflight, slot{pd, chunk})
		issued += chunk
	}
	for i, s := range inflight {
		if err := retire(s); err != nil {
			drain(inflight[i+1:])
			return total, err
		}
	}
	return total, nil
}

// Write writes n bytes from the process buffer at va.
func (l *Lib) Write(p *sim.Proc, fd int, va vm.VirtAddr, n int) (int, error) {
	f, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	resp, err := l.cl.Write(p, f.ino, f.off, core.Of(core.UserSeg(l.as, va, n)))
	if err != nil {
		return 0, err
	}
	f.off += int64(resp.N)
	if f.off > f.size {
		f.size = f.off
	}
	// The reply's attributes are the write-time authoritative size —
	// over a striped cluster it is the reconciled merge, which a
	// coherent multi-writer file can have pushed past this
	// descriptor's own high-water mark. Adopting it keeps Seek(END)
	// honest without a single extra round trip (ORFA still caches no
	// metadata: this is the size the server just told us).
	if resp.Attr.Ino == f.ino && resp.Attr.Size > f.size {
		f.size = resp.Attr.Size
	}
	return int(resp.N), nil
}

// Seek adjusts the file offset (whence: 0 set, 1 cur, 2 end).
func (l *Lib) Seek(p *sim.Proc, fd int, off int64, whence int) (int64, error) {
	f, err := l.file(fd)
	if err != nil {
		return 0, err
	}
	switch whence {
	case 1:
		f.off += off
	case 2:
		f.off = f.size + off
	default:
		f.off = off
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

// Stat resolves a path's attributes (full remote walk every time).
func (l *Lib) Stat(p *sim.Proc, path string) (kernel.Attr, error) {
	return l.walk(p, path)
}

// Readdir lists a directory.
func (l *Lib) Readdir(p *sim.Proc, path string) ([]kernel.DirEntry, error) {
	a, err := l.walk(p, path)
	if err != nil {
		return nil, err
	}
	resp, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: a.Ino})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// ReaddirAttrs lists a directory and returns each entry's attributes —
// the "ls -l" pattern. On the synchronous protocol this is one
// round trip per entry (ORFA's §3.1 weakness); over a windowed session
// the per-entry getattrs pack into combined request messages
// (Session.MetaBatch), the client-side analogue of §3.3 combining.
func (l *Lib) ReaddirAttrs(p *sim.Proc, path string) ([]kernel.DirEntry, []kernel.Attr, error) {
	ents, err := l.Readdir(p, path)
	if err != nil {
		return nil, nil, err
	}
	attrs := make([]kernel.Attr, len(ents))
	if l.sess != nil {
		reqs := make([]*rfsrv.Req, len(ents))
		for i, e := range ents {
			reqs[i] = &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: e.Ino}
		}
		l.MetaRPCs.Add(len(reqs))
		resps, err := l.sess.MetaBatch(p, reqs)
		if err != nil {
			return nil, nil, err
		}
		for i, r := range resps {
			attrs[i] = r.Attr
		}
		return ents, attrs, nil
	}
	for i, e := range ents {
		resp, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: e.Ino})
		if err != nil {
			return nil, nil, err
		}
		attrs[i] = resp.Attr
	}
	return ents, attrs, nil
}

// Mkdir creates a directory.
func (l *Lib) Mkdir(p *sim.Proc, path string) error {
	dirPath, name := splitDir(path)
	dir, err := l.walk(p, dirPath)
	if err != nil {
		return err
	}
	_, err = l.meta(p, &rfsrv.Req{Op: rfsrv.OpMkdir, Ino: dir.Ino, Name: name})
	return err
}

// Unlink removes a file.
func (l *Lib) Unlink(p *sim.Proc, path string) error {
	dirPath, name := splitDir(path)
	dir, err := l.walk(p, dirPath)
	if err != nil {
		return err
	}
	_, err = l.meta(p, &rfsrv.Req{Op: rfsrv.OpUnlink, Ino: dir.Ino, Name: name})
	return err
}

// Rename moves srcPath to dstPath. Both parents are walked (ORFA has
// no caches), then the protocol client's native rename runs
// (rfsrv.Renamer: one local rename on a single server, the
// cross-owner multi-phase protocol on a sharded cluster). An
// interrupted cross-owner run surfaces as rfsrv.ErrRenameInDoubt;
// re-driving the same rename resolves it.
func (l *Lib) Rename(p *sim.Proc, srcPath, dstPath string) error {
	rn, ok := l.cl.(rfsrv.Renamer)
	if !ok {
		return fmt.Errorf("orfa: client %T does not support rename", l.cl)
	}
	srcDirPath, srcName := splitDir(srcPath)
	srcDir, err := l.walk(p, srcDirPath)
	if err != nil {
		return err
	}
	dstDirPath, dstName := splitDir(dstPath)
	dstDir, err := l.walk(p, dstDirPath)
	if err != nil {
		return err
	}
	l.MetaRPCs.Add(1)
	_, err = rn.Rename(p, srcDir.Ino, srcName, dstDir.Ino, dstName)
	return err
}

// Truncate sets a file's size via its descriptor.
func (l *Lib) Truncate(p *sim.Proc, fd int, size int64) error {
	f, err := l.file(fd)
	if err != nil {
		return err
	}
	if _, err := l.meta(p, &rfsrv.Req{Op: rfsrv.OpTruncate, Ino: f.ino, Off: size}); err != nil {
		return err
	}
	f.size = size
	return nil
}

// Close releases a descriptor.
func (l *Lib) Close(p *sim.Proc, fd int) error {
	if _, err := l.file(fd); err != nil {
		return err
	}
	delete(l.fds, fd)
	return nil
}
