package orfa_test

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/orfa"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

type rig struct {
	env    *sim.Engine
	client *hw.Node
	as     *vm.AddressSpace
	buf    vm.VirtAddr
	lib    *orfa.Lib
}

func run(t *testing.T, body func(r *rig, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	client, server := c.AddNode("client"), c.AddNode("server")
	backing := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, backing)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 1); err != nil {
		t.Fatal(err)
	}
	mxC := mx.Attach(client)
	done := false
	env.Spawn("t", func(p *sim.Proc) {
		as := client.NewUserSpace("app")
		cl, err := rfsrv.NewMXClient(mxC, 2, false, as, server.ID, 1)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := as.Mmap(1<<20, "buf")
		r := &rig{env: env, client: client, as: as, buf: buf, lib: orfa.New(cl, as)}
		body(r, p)
		done = true
	})
	env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

func TestFDLifecycle(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		fd, err := r.lib.Create(p, "/file")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.lib.Open(p, "/missing"); err != kernel.ErrNotFound {
			t.Fatalf("open missing: %v", err)
		}
		if err := r.lib.Close(p, fd); err != nil {
			t.Fatal(err)
		}
		if _, err := r.lib.Read(p, fd, r.buf, 10); err == nil {
			t.Fatal("read after close succeeded")
		}
		if err := r.lib.Close(p, 999); err == nil {
			t.Fatal("close of bad fd succeeded")
		}
	})
}

func TestReadWriteSeek(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		fd, _ := r.lib.Create(p, "/f")
		data := make([]byte, 10000)
		for i := range data {
			data[i] = byte(i * 7)
		}
		r.as.WriteBytes(r.buf, data)
		if n, err := r.lib.Write(p, fd, r.buf, len(data)); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		// Offset advanced: read at EOF returns 0.
		if n, _ := r.lib.Read(p, fd, r.buf, 10); n != 0 {
			t.Fatalf("read at EOF = %d", n)
		}
		if off, _ := r.lib.Seek(p, fd, 100, 0); off != 100 {
			t.Fatalf("seek set = %d", off)
		}
		n, err := r.lib.Read(p, fd, r.buf, 50)
		if err != nil || n != 50 {
			t.Fatalf("read: %d %v", n, err)
		}
		got, _ := r.as.ReadBytes(r.buf, 50)
		if !bytes.Equal(got, data[100:150]) {
			t.Fatal("seek+read returned wrong bytes")
		}
		if off, _ := r.lib.Seek(p, fd, -50, 2); off != int64(len(data)-50) {
			t.Fatalf("seek end = %d", off)
		}
		if off, _ := r.lib.Seek(p, fd, 10, 1); off != int64(len(data)-40) {
			t.Fatalf("seek cur = %d", off)
		}
	})
}

func TestEveryStatWalksRemotely(t *testing.T) {
	// ORFA has no metadata cache (§3.1): N stats of a depth-2 path cost
	// ≥ 3 RPCs each (root getattr + 2 lookups).
	run(t, func(r *rig, p *sim.Proc) {
		r.lib.Mkdir(p, "/d")
		fd, _ := r.lib.Create(p, "/d/f")
		r.lib.Close(p, fd)
		before := r.lib.MetaRPCs.N
		for i := 0; i < 5; i++ {
			if _, err := r.lib.Stat(p, "/d/f"); err != nil {
				t.Fatal(err)
			}
		}
		if got := r.lib.MetaRPCs.N - before; got < 15 {
			t.Fatalf("5 stats issued only %d RPCs (cache sneaked in?)", got)
		}
	})
}

func TestCreateExistingOpens(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		fd1, _ := r.lib.Create(p, "/f")
		r.as.WriteBytes(r.buf, []byte("hello"))
		r.lib.Write(p, fd1, r.buf, 5)
		r.lib.Close(p, fd1)
		fd2, err := r.lib.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		a, _ := r.lib.Stat(p, "/f")
		if a.Size != 5 {
			t.Fatalf("create-existing truncated: size %d", a.Size)
		}
		r.lib.Close(p, fd2)
	})
}

func TestTruncateAndReaddir(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		fd, _ := r.lib.Create(p, "/f")
		r.as.WriteBytes(r.buf, make([]byte, 9000))
		r.lib.Write(p, fd, r.buf, 9000)
		if err := r.lib.Truncate(p, fd, 1234); err != nil {
			t.Fatal(err)
		}
		a, _ := r.lib.Stat(p, "/f")
		if a.Size != 1234 {
			t.Fatalf("size after truncate = %d", a.Size)
		}
		ents, err := r.lib.Readdir(p, "/")
		if err != nil || len(ents) != 1 || ents[0].Name != "f" {
			t.Fatalf("readdir: %v %v", ents, err)
		}
		if err := r.lib.Unlink(p, "/f"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.lib.Stat(p, "/f"); err != kernel.ErrNotFound {
			t.Fatalf("stat after unlink: %v", err)
		}
	})
}

func TestOpenDirectoryRejected(t *testing.T) {
	run(t, func(r *rig, p *sim.Proc) {
		r.lib.Mkdir(p, "/d")
		if _, err := r.lib.Open(p, "/d"); err != kernel.ErrIsDir {
			t.Fatalf("open dir: %v", err)
		}
	})
}
