package figures

// This file regenerates Table 1, the paper's summary comparison of
// every mechanism, from the individually reproduced figures.
import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/netpipe"
)

// Table1 reproduces the paper's Table 1: the summary of the MX-vs-GM
// in-kernel comparison, assembled from fresh measurements of the same
// experiments behind Figures 4–8.
func (c Config) Table1() (*Table, error) {
	// Kernel 1-byte latency (Fig 5(a) conditions).
	gmK, err := c.pingpong(hw.PCIXD, []int{1}, gmPair(netpipe.KernelBuf, 4096))
	if err != nil {
		return nil, err
	}
	gmU, err := c.pingpong(hw.PCIXD, []int{1}, gmPair(netpipe.UserBuf, 4096))
	if err != nil {
		return nil, err
	}
	mxK, err := c.pingpong(hw.PCIXD, []int{1}, mxPair(netpipe.KernelBuf, 4096, true))
	if err != nil {
		return nil, err
	}
	mxU, err := c.pingpong(hw.PCIXD, []int{1}, mxPair(netpipe.UserBuf, 4096, false))
	if err != nil {
		return nil, err
	}

	// Remote file access at the plateaus of Fig 7: buffered saturates
	// by 64 KB requests; direct needs 1 MB requests to amortize the
	// rendezvous.
	gmBuf, err := c.fileAccess(fsGM, false, false, []int{64 * 1024})
	if err != nil {
		return nil, err
	}
	mxBuf, err := c.fileAccess(fsMX, false, false, []int{64 * 1024})
	if err != nil {
		return nil, err
	}
	gmDir, err := c.fileAccess(fsGM, false, true, []int{1 << 20})
	if err != nil {
		return nil, err
	}
	mxDir, err := c.fileAccess(fsMX, false, true, []int{1 << 20})
	if err != nil {
		return nil, err
	}

	// Socket latency and bandwidth (Fig 8 conditions, PCI-XE).
	gmSock, err := c.pingpong(hw.PCIXE, []int{1, 1 << 20}, sockPair("gm"))
	if err != nil {
		return nil, err
	}
	mxSock, err := c.pingpong(hw.PCIXE, []int{1, 1 << 20}, sockPair("mx"))
	if err != nil {
		return nil, err
	}

	us := func(pt netpipe.Point) string {
		return fmt.Sprintf("%.1f µs", float64(pt.OneWay.Nanoseconds())/1000)
	}
	linkPct := func(pt netpipe.Point) float64 { return pt.MBps / 500 * 100 }

	bufGain := (mxBuf[0].MBps - gmBuf[0].MBps) / gmBuf[0].MBps * 100
	bwGain := (mxSock[1].MBps - gmSock[1].MBps) / gmSock[1].MBps * 100

	return &Table{
		ID:      "table1",
		Title:   "Summary of MX and GM in-kernel performance comparison",
		Columns: []string{"", "GM", "MX"},
		Rows: [][]string{
			{"Kernel latency",
				fmt.Sprintf("%s (%s in user-space)", us(gmK[0]), us(gmU[0])),
				fmt.Sprintf("%s (%s in user-space)", us(mxK[0]), us(mxU[0]))},
			{"Buffered remote file access",
				fmt.Sprintf("%.1f MB/s (needs physical API)", gmBuf[0].MBps),
				fmt.Sprintf("%.1f MB/s (+%.0f%%)", mxBuf[0].MBps, bufGain)},
			{"Direct remote file access",
				fmt.Sprintf("%.1f MB/s (needs kernel patching)", gmDir[0].MBps),
				fmt.Sprintf("%.1f MB/s (at least as good)", mxDir[0].MBps)},
			{"0-copy socket latency",
				us(gmSock[0]),
				us(mxSock[0])},
			{"0-copy socket bandwidth",
				fmt.Sprintf("%.1f MB/s (%.0f%% of link)", gmSock[1].MBps, linkPct(gmSock[1])),
				fmt.Sprintf("%.1f MB/s (+%.0f%%)", mxSock[1].MBps, bwGain)},
		},
		Expected: "GM kernel 8µs (6 user) vs MX 4µs (== user); buffered +40% on MX; " +
			"direct at least as good; sockets 15µs vs 5µs; GM <70% of link, MX up to +100%",
	}, nil
}
