package figures

// Tests for the small-file suite: the layout-policy acceptance bar
// (whole-on-home must beat striping once there is more than one
// server) and the zero-reconciliation audit built into sfcRun.

import "testing"

// TestSmallFileWholeBeatsStriped is the acceptance bar: at 4 and 8
// servers, the adaptive whole-on-home policy must deliver more
// small-file ops/s than the default striped client on the identical
// storm — and (audited inside sfcRun) with zero OpSetSize
// reconciliations. Short mode checks the 4-server point only.
func TestSmallFileWholeBeatsStriped(t *testing.T) {
	c := DefaultConfig()
	axis := []int{4, 8}
	if testing.Short() {
		axis = []int{4}
	}
	for _, servers := range axis {
		striped, err := c.sfcRun(false, servers)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := c.sfcRun(true, servers)
		if err != nil {
			t.Fatal(err)
		}
		if whole.opsPerSec <= striped.opsPerSec {
			t.Errorf("s=%d: whole-on-home %.0f ops/s, want > striped %.0f ops/s",
				servers, whole.opsPerSec, striped.opsPerSec)
		}
		if whole.setSizePerWrite != 0 {
			t.Errorf("s=%d: whole-on-home paid %.2f reconciliations/write, want 0",
				servers, whole.setSizePerWrite)
		}
		if striped.setSizePerWrite == 0 {
			t.Errorf("s=%d: striped storm paid no reconciliations — workload no longer exercises the fan", servers)
		}
		t.Logf("s=%d: striped %.0f ops/s (%.2f setsize/write), whole-on-home %.0f ops/s (%.2f setsize/write)",
			servers, striped.opsPerSec, striped.setSizePerWrite, whole.opsPerSec, whole.setSizePerWrite)
	}
}

// TestSmallFileOneServerPoliciesAgree: on a one-server cluster the
// policy is inert (SetLayoutPolicy documents why), so both runs must
// produce identical throughput — the suite-level half of the
// bit-identity guarantee.
func TestSmallFileOneServerPoliciesAgree(t *testing.T) {
	c := DefaultConfig()
	striped, err := c.sfcRun(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := c.sfcRun(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if striped.opsPerSec != whole.opsPerSec {
		t.Errorf("1-server runs diverge: striped %.6f ops/s, adaptive %.6f ops/s",
			striped.opsPerSec, whole.opsPerSec)
	}
}
