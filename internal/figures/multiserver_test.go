package figures

// Tests for the striped multi-server suite: the PR's scaling
// acceptance bar and the one-server/plain-session harness equality.

import "testing"

// TestMultiServerScaling is the acceptance bar: aggregate ORFS-direct
// throughput at 4 servers must be at least 2.5x the 1-server
// configuration, at the PR 2 best window, with the fixed client count.
func TestMultiServerScaling(t *testing.T) {
	c := DefaultConfig()
	base, err := c.msRun("orfs-direct", 1, msClients)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := c.msRun("orfs-direct", 4, msClients)
	if err != nil {
		t.Fatal(err)
	}
	if wide.mbps < base.mbps*2.5 {
		t.Errorf("4 servers = %.1f MB/s, want >= 2.5x 1 server (%.1f MB/s)", wide.mbps, base.mbps)
	}
	t.Logf("orfs-direct: 1 server = %.1f MB/s, 4 servers = %.1f MB/s (%.2fx)",
		base.mbps, wide.mbps, wide.mbps/base.mbps)
}

// TestMultiServerOneServerMatchesScalability ties the new harness to
// the PR 2 one: a 1-server multiserver point drives the whole cluster
// code path, and must reproduce the plain-session scalability result
// bit-identically (same workload, same window, same client count).
func TestMultiServerOneServerMatchesScalability(t *testing.T) {
	c := DefaultConfig()
	viaCluster, err := c.msRun("orfs-direct", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := c.scalRun("orfs-direct", 1, msWindow)
	if err != nil {
		t.Fatal(err)
	}
	if viaCluster.mbps != viaSession.mbps {
		t.Errorf("1-server cluster harness %.6f MB/s != session harness %.6f MB/s", viaCluster.mbps, viaSession.mbps)
	}
	if viaCluster.p50 != viaSession.p50 || viaCluster.p99 != viaSession.p99 {
		t.Errorf("latency percentiles differ: cluster p50/p99 %v/%v, session %v/%v",
			viaCluster.p50, viaCluster.p99, viaSession.p50, viaSession.p99)
	}
}

// TestMultiServerNBDAndBufferedScale: the other two scenarios must
// also gain from added servers (block striping and readahead across
// the aggregate window).
func TestMultiServerNBDAndBufferedScale(t *testing.T) {
	for _, scen := range []string{"nbd", "orfs-buffered"} {
		c := DefaultConfig()
		base, err := c.msRun(scen, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := c.msRun(scen, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if wide.mbps <= base.mbps {
			t.Errorf("%s: 4 servers = %.1f MB/s not above 1 server = %.1f MB/s", scen, wide.mbps, base.mbps)
		}
		t.Logf("%s: 1 server = %.1f MB/s, 4 servers = %.1f MB/s", scen, base.mbps, wide.mbps)
	}
}
