package figures

// The torture entry: coverage as a benchmark. The randomized
// fault-schedule harness (internal/torture, DESIGN.md §12) is
// primarily a correctness instrument, but every run also measures two
// numbers the hand-scripted experiments cannot: sustained cluster
// throughput while servers are being killed, stalled and readmitted
// mid-workload, and the fault-recovery latency — how long a client
// takes to complete its first operation after observing an exclusion.
// Reporting them per corpus seed turns coverage drift into a visible
// regression: a protocol change that slows failover or shrinks the
// op mix shows up here before any assertion fires.

import (
	"fmt"

	"repro/internal/netpipe"
	"repro/internal/torture"
)

// tortureDataSeeds and tortureNSSeeds are the figure's fixed sample
// of the tier-1 corpus: four data-mode and four namespace-mode seeds
// at default geometry, paired by index so the series stay comparable
// across snapshots (sample k runs data seed k and ns seed 10+k).
var (
	tortureDataSeeds = []int64{1, 2, 3, 4}
	tortureNSSeeds   = []int64{11, 12, 13, 14}
)

// Torture runs the harness's figure sample and returns two figures:
// sustained ops/s per corpus sample under the randomized fault
// schedule, and fault-recovery latency (mean and max over every
// (fault, client) observation). The x axis is the sample index into
// the seed lists above — not a size: each point is one deterministic
// run.
func (c Config) Torture() ([]*Figure, error) {
	ops := &Figure{
		ID:       "torture",
		Title:    "Torture harness: sustained ops/s under the randomized fault schedule",
		XLabel:   "corpus sample (data seed k, ns seed 10+k)",
		YLabel:   "cluster ops/s (simulated)",
		Unit:     "ops/s",
		Expected: "Throughput holds the same order of magnitude across seeds and modes: faults cost retries and failovers, not collapse. Every run model-checks §9/§11 coherence while it measures.",
	}
	rec := &Figure{
		ID:       "torture-recovery",
		Title:    "Torture harness: fault-recovery latency (fault injection to first completed op)",
		XLabel:   "corpus sample (data seed k, ns seed 10+k)",
		YLabel:   "latency (µs)",
		Expected: "Recovery is dominated by the reply deadline (5ms default): a client discovers an exclusion by timeout, then completes through the survivors. Means sit near one deadline; maxima stack a few.",
	}
	modes := []struct {
		label string
		mode  torture.Mode
		seeds []int64
	}{
		{"data seeds 1-4", torture.ModeData, tortureDataSeeds},
		{"ns seeds 11-14", torture.ModeNS, tortureNSSeeds},
	}
	for _, m := range modes {
		throughput := netpipe.Series{Label: m.label}
		mean := netpipe.Series{Label: m.label + " mean"}
		max := netpipe.Series{Label: m.label + " max"}
		for k, seed := range m.seeds {
			res, err := torture.Run(torture.Config{Seed: seed, Mode: m.mode})
			if err != nil {
				return nil, fmt.Errorf("torture figure seed %d: %w", seed, err)
			}
			throughput.Points = append(throughput.Points,
				netpipe.Point{Size: k + 1, MBps: res.OpsPerSec})
			mean.Points = append(mean.Points,
				netpipe.Point{Size: k + 1, OneWay: res.RecoveryMean})
			max.Points = append(max.Points,
				netpipe.Point{Size: k + 1, OneWay: res.RecoveryMax})
		}
		ops.Series = append(ops.Series, throughput)
		rec.Series = append(rec.Series, mean, max)
	}
	return []*Figure{ops, rec}, nil
}
