package figures

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netpipe"
)

// quick is a low-iteration config: the simulation is deterministic, so
// few round trips per point are exact enough for shape assertions.
func quick() Config { return Config{Iters: 4, Warmup: 1} }

func at(t *testing.T, s netpipe.Series, size int) netpipe.Point {
	t.Helper()
	for _, pt := range s.Points {
		if pt.Size == size {
			return pt
		}
	}
	t.Fatalf("series %q has no point at size %d", s.Label, size)
	return netpipe.Point{}
}

func us(pt netpipe.Point) float64 { return float64(pt.OneWay.Nanoseconds()) / 1000 }

func TestFig1bShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	// 64KB = 16 pages: registration ≈ 49µs (3µs/page), dereg ≥ 200µs.
	reg := us(at(t, f.Series[2], 65536))
	if reg < 45 || reg > 55 {
		t.Errorf("registration of 64KB = %.1fµs, want ≈49", reg)
	}
	dereg := us(at(t, f.Series[3], 65536))
	if dereg < 200 {
		t.Errorf("deregistration = %.1fµs, want ≥200", dereg)
	}
	// Copying a 64KB buffer on the P4 beats register+deregister.
	copyP4 := us(at(t, f.Series[1], 65536))
	both := us(at(t, f.Series[4], 65536))
	if copyP4 >= both {
		t.Errorf("64KB copy (%.1fµs) should beat register+dereg (%.1fµs)", copyP4, both)
	}
	// At 256KB registration alone beats the P3 copy (reuse pays off).
	reg256 := us(at(t, f.Series[2], 262144))
	copyP3 := us(at(t, f.Series[0], 262144))
	if reg256 >= copyP3 {
		t.Errorf("256KB: registration (%.1fµs) should beat P3 copy (%.1fµs)", reg256, copyP3)
	}
}

func TestFig3bShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	const n = 65536
	raw := at(t, f.Series[0], n).MBps
	orfa := at(t, f.Series[1], n).MBps
	orfs := at(t, f.Series[2], n).MBps
	nocache := at(t, f.Series[3], n).MBps
	if !(raw > orfa && orfa >= orfs*0.98) {
		t.Errorf("ordering violated: raw %.1f, ORFA %.1f, ORFS %.1f", raw, orfa, orfs)
	}
	drop := (orfs - nocache) / orfs
	if drop < 0.08 || drop > 0.35 {
		t.Errorf("no-cache drop = %.0f%% (cached %.1f, uncached %.1f), paper ≈20%%",
			drop*100, orfs, nocache)
	}
}

func TestFig4aShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Series[0].Points {
		virt := f.Series[0].Points[i]
		phys := f.Series[1].Points[i]
		gain := virt.OneWay - phys.OneWay
		if gain < 500*time.Nanosecond || gain > 2*time.Microsecond {
			t.Errorf("size %d: physical gain %v, want ≈1µs", virt.Size, gain)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	direct, buffered := f.Series[0], f.Series[1]
	// Small requests: buffered wins (§3.3: "4 kB accesses are faster
	// through the page-cache").
	for _, n := range []int{512, 1024, 2048} {
		d, b := at(t, direct, n).MBps, at(t, buffered, n).MBps
		if b <= d {
			t.Errorf("size %d: buffered (%.1f) should beat direct (%.1f)", n, b, d)
		}
	}
	// Large requests: direct wins decisively.
	d, b := at(t, direct, 1<<20).MBps, at(t, buffered, 1<<20).MBps
	if d < 2*b {
		t.Errorf("1MB: direct (%.1f) should dominate buffered (%.1f)", d, b)
	}
}

func TestFig5aShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	gmU := us(at(t, f.Series[0], 1))
	gmK := us(at(t, f.Series[1], 1))
	mxU := us(at(t, f.Series[2], 1))
	mxK := us(at(t, f.Series[3], 1))
	if gmU < 6.2 || gmU > 7.2 {
		t.Errorf("GM user = %.2fµs, want ≈6.7", gmU)
	}
	if d := gmK - gmU; d < 1.6 || d > 2.4 {
		t.Errorf("GM kernel penalty = %.2fµs, want ≈2", d)
	}
	if mxU < 3.8 || mxU > 4.7 {
		t.Errorf("MX user = %.2fµs, want ≈4.2", mxU)
	}
	if d := mxK - mxU; d < -0.3 || d > 0.3 {
		t.Errorf("MX kernel-user gap = %.2fµs, want ≈0", d)
	}
}

func TestFig5bShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	gm := at(t, f.Series[0], 1<<20).MBps
	mxu := at(t, f.Series[1], 1<<20).MBps
	mxkp := at(t, f.Series[2], 1<<20).MBps
	for _, v := range []float64{gm, mxu, mxkp} {
		if v < 215 || v > 252 {
			t.Errorf("1MB bandwidth %.1f outside the ≈245 MB/s regime", v)
		}
	}
	if mxkp <= mxu {
		t.Errorf("kernel-physical (%.1f) should exceed user (%.1f) for large messages", mxkp, mxu)
	}
	// GM leads at page-size messages (registration-cache reuse).
	if gm4, mx4 := at(t, f.Series[0], 4096).MBps, at(t, f.Series[1], 4096).MBps; gm4 <= mx4 {
		t.Errorf("4KB: GM (%.1f) should lead MX user (%.1f)", gm4, mx4)
	}
}

func TestFig6Shape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	std := at(t, f.Series[1], 32768).MBps
	noSend := at(t, f.Series[2], 32768).MBps
	noCopy := at(t, f.Series[3], 32768).MBps
	if g := (noSend - std) / std; g < 0.12 || g > 0.25 {
		t.Errorf("no-send-copy gain %.0f%%, want ≈17%%", g*100)
	}
	if g := (noCopy - noSend) / noSend; g < 0.10 || g > 0.30 {
		t.Errorf("no-copy extra gain %.0f%%, want ≈15%%", g*100)
	}
	// The rendezvous regime starts below the no-copy medium peak.
	large := at(t, f.Series[3], 65536).MBps
	if large >= noCopy {
		t.Errorf("64KB large-message point (%.1f) should dip below the 32KB no-copy peak (%.1f)",
			large, noCopy)
	}
}

func TestFig7aShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	gmD := at(t, f.Series[1], 1<<20).MBps
	mxD := at(t, f.Series[3], 1<<20).MBps
	// "Direct file accesses on MX are slightly better than over GM."
	if mxD < gmD*0.95 {
		t.Errorf("ORFS/MX direct (%.1f) should be at least ≈ ORFS/GM (%.1f)", mxD, gmD)
	}
	if mxD > gmD*1.35 {
		t.Errorf("ORFS/MX direct (%.1f) suspiciously far above ORFS/GM (%.1f)", mxD, gmD)
	}
}

func TestFig7bShape(t *testing.T) {
	t.Parallel()
	f, err := quick().Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	gmB := at(t, f.Series[1], 1<<20).MBps
	mxB := at(t, f.Series[3], 1<<20).MBps
	gain := (mxB - gmB) / gmB
	if gain < 0.25 || gain > 0.55 {
		t.Errorf("buffered MX gain = %.0f%% (GM %.1f, MX %.1f), paper ≈40%%", gain*100, gmB, mxB)
	}
	// Buffered plateaus below raw bandwidth (page-sized requests).
	raw := at(t, f.Series[0], 1<<20).MBps
	if gmB > raw/2 {
		t.Errorf("ORFS/GM buffered (%.1f) should sit well below raw GM (%.1f)", gmB, raw)
	}
}

func TestFig8Shapes(t *testing.T) {
	t.Parallel()
	fa, err := quick().Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	gm1 := us(at(t, fa.Series[0], 1))
	mx1 := us(at(t, fa.Series[1], 1))
	if mx1 < 4.5 || mx1 > 5.8 {
		t.Errorf("Sockets-MX 1B = %.2fµs, want ≈5", mx1)
	}
	if gm1 < 13 || gm1 > 17 {
		t.Errorf("Sockets-GM 1B = %.2fµs, want ≈15", gm1)
	}
	fb, err := quick().Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	gmBW := at(t, fb.Series[0], 1<<20).MBps
	mxBW := at(t, fb.Series[1], 1<<20).MBps
	if gmBW > 0.72*500 {
		t.Errorf("Sockets-GM 1MB = %.1f MB/s, should be <70%% of the link", gmBW)
	}
	if g := (mxBW - gmBW) / gmBW; g < 0.25 {
		t.Errorf("Sockets-MX 1MB gain = %.0f%%, want ≈50%%", g*100)
	}
	// Every size: MX ≥ GM.
	for i := range fb.Series[0].Points {
		if fb.Series[1].Points[i].MBps < fb.Series[0].Points[i].MBps {
			t.Errorf("size %d: Sockets-MX (%.1f) below Sockets-GM (%.1f)",
				fb.Series[0].Points[i].Size, fb.Series[1].Points[i].MBps, fb.Series[0].Points[i].MBps)
		}
	}
}

func TestTable1Builds(t *testing.T) {
	t.Parallel()
	tab, err := quick().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("table has %d rows, want 5", len(tab.Rows))
	}
	text := tab.Render()
	for _, want := range []string{"Kernel latency", "Buffered remote file access",
		"0-copy socket latency", "GM", "MX"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	t.Parallel()
	f := &Figure{
		ID: "figX", Title: "test", XLabel: "x", YLabel: "latency (µs)",
		Series: []netpipe.Series{{
			Label:  "s1",
			Points: []netpipe.Point{{Size: 1, OneWay: 1500, MBps: 0.5}},
		}},
		Expected: "something",
	}
	out := f.Render(f.Latency())
	for _, want := range []string{"figX", "s1", "1.50µs", "paper: something"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if !f.Latency() {
		t.Error("Latency() should detect µs axis")
	}
}

func TestRunPingPongNames(t *testing.T) {
	t.Parallel()
	if _, err := RunPingPong("bogus", netpipe.UserBuf, 0, []int{1}, quick()); err == nil {
		t.Error("unknown transport accepted")
	}
	pts, err := RunPingPong("mx", netpipe.UserBuf, 0, []int{1, 2}, quick())
	if err != nil || len(pts) != 2 {
		t.Errorf("RunPingPong: %v %v", pts, err)
	}
}

func TestRunFileBenchNames(t *testing.T) {
	t.Parallel()
	if _, err := RunFileBench("bogus", "direct", []int{4096}, quick()); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := RunFileBench("mx", "bogus", []int{4096}, quick()); err == nil {
		t.Error("unknown access accepted")
	}
	pts, err := RunFileBench("mx", "direct", []int{4096}, quick())
	if err != nil || len(pts) != 1 {
		t.Errorf("RunFileBench: %v %v", pts, err)
	}
}
