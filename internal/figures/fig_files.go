package figures

// This file holds the file-access figures: a shared ORFA/ORFS
// workload harness (fileAccessOnce) parameterized over transport,
// user/kernel space and direct/buffered mode, feeding Fig 3(b),
// Fig 4(b) and Fig 7(a)/7(b).
import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/netpipe"
	"repro/internal/orfa"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

// fileBytes is the maximum sequential working set a file-throughput
// point reads; small request sizes read a proportionally smaller
// prefix (the simulation is deterministic, so a few hundred requests
// measure the steady state exactly).
const fileBytes = 2 << 20

// workingSet returns how many bytes to read for a request size.
func workingSet(reqSize int) int {
	t := reqSize * 128
	if t < 16*1024 {
		t = 16 * 1024
	}
	if t > fileBytes {
		t = fileBytes
	}
	return t
}

// fsTransport names the client transport variants of the file figures.
type fsTransport int

const (
	fsGM        fsTransport = iota
	fsGMNoCache             // registration per transfer (rotating buffers)
	fsMX
)

// fileAccess measures application-level sequential read throughput
// (MB/s) for each request size: the workload of Figures 3(b), 4(b)
// and 7 ("the throughput at the application level when accessing large
// files sequentially", §3.3).
//
// userSpace=true measures ORFA (user-space library); otherwise ORFS
// through the VFS, with direct selecting O_DIRECT vs buffered access.
func (c Config) fileAccess(tr fsTransport, userSpace, direct bool, sizes []int) ([]netpipe.Point, error) {
	return c.fileAccessOpt(faOpts{tr: tr, userSpace: userSpace, direct: direct, combine: 1}, sizes)
}

// faOpts parameterizes the file workload, including the ablation knobs:
// combine > 1 enables the request-combining extension (the Linux 2.6
// behaviour the paper predicts), noPhys runs the GM client without the
// paper's physical-address primitives (stock GM).
type faOpts struct {
	tr                fsTransport
	userSpace, direct bool
	combine           int
	noPhys            bool
}

func (c Config) fileAccessOpt(o faOpts, sizes []int) ([]netpipe.Point, error) {
	tr := o.tr
	var pts []netpipe.Point
	var failure error
	for _, n := range sizes {
		// A fresh cluster per point: cold page cache, cold dentry
		// cache, deterministic state.
		env := sim.NewEngine()
		cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		client, server := cl.AddNode("client"), cl.AddNode("server")
		serverFS := memfs.New("backing", server, 0)
		srv := rfsrv.NewServer(server, serverFS)
		switch tr {
		case fsMX:
			if _, err := srv.ServeMX(mx.Attach(server), 1, 1); err != nil {
				return nil, err
			}
		default:
			if _, err := srv.ServeGM(gm.Attach(server), 1); err != nil {
				return nil, err
			}
		}
		n := n
		env.Spawn("bench", func(p *sim.Proc) {
			mbps, err := c.fileAccessOnce(p, o, client, server, serverFS, n)
			if err != nil {
				failure = err
				return
			}
			pts = append(pts, netpipe.Point{
				Size: n,
				MBps: mbps,
			})
		})
		env.Run(0)
		if failure != nil {
			return nil, failure
		}
	}
	return pts, nil
}

func (c Config) fileAccessOnce(p *sim.Proc, o faOpts, client, server *hw.Node, serverFS *memfs.FS, reqSize int) (float64, error) {
	tr, userSpace, direct := o.tr, o.userSpace, o.direct
	// Seed the file server-side.
	attr, err := serverFS.Create(p, serverFS.Root(), "data")
	if err != nil {
		return 0, err
	}
	seedVA, err := server.Kernel.Mmap(fileBytes, "seed")
	if err != nil {
		return 0, err
	}
	seed := make([]byte, fileBytes)
	for i := range seed {
		seed[i] = byte(i * 131)
	}
	server.Kernel.WriteBytes(seedVA, seed)
	if _, err := serverFS.WriteDirect(p, attr.Ino, 0, vecKernel(server.Kernel, seedVA, fileBytes)); err != nil {
		return 0, err
	}

	// Client transport.
	var clTr rfsrv.Client
	switch tr {
	case fsMX:
		kernSide := !userSpace
		bufAS := client.Kernel
		if userSpace {
			bufAS = client.NewUserSpace("orfa")
		}
		clTr, err = rfsrv.NewMXClient(mx.Attach(client), 2, kernSide, bufAS, server.ID, 1)
	case fsGM, fsGMNoCache:
		kernSide := !userSpace
		bufAS := client.Kernel
		if userSpace {
			bufAS = client.NewUserSpace("orfa")
		}
		cachePages := 8192
		var gmCl *rfsrv.GMClient
		gmCl, err = rfsrv.NewGMClient(p, gm.Attach(client), 2, kernSide, bufAS, server.ID, 1, cachePages)
		if err == nil && o.noPhys {
			err = gmCl.DisablePhysicalAPI(p)
		}
		clTr = gmCl
	}
	if err != nil {
		return 0, err
	}

	// Application buffers: one reused buffer for the cached cases; a
	// rotating ring for the "without registration cache" case, so that
	// every transfer misses and pays the per-page registration.
	as := client.NewUserSpace("app")
	ringSize := 1
	if tr == fsGMNoCache {
		ringSize = 64
	}
	bufs := make([]vm.VirtAddr, ringSize)
	for i := range bufs {
		if bufs[i], err = as.Mmap(maxInt(reqSize, 4096), "buf"); err != nil {
			return 0, err
		}
	}

	reads := workingSet(reqSize) / reqSize
	if reads == 0 {
		reads = 1
	}
	if userSpace {
		lib := orfa.New(clTr, as)
		fd, err := lib.Open(p, "/data")
		if err != nil {
			return 0, err
		}
		t0 := p.Now()
		total := 0
		for i := 0; i < reads; i++ {
			got, err := lib.Read(p, fd, bufs[i%ringSize], reqSize)
			if err != nil {
				return 0, err
			}
			if got == 0 {
				break
			}
			total += got
		}
		return mbps(total, p.Now()-t0), nil
	}

	osys := kernel.NewOS(client, 0)
	osys.SetReadChunkPages(o.combine)
	osys.Mount("/mnt", orfs.New("orfs", clTr))
	flags := kernel.OpenFlag(0)
	if direct {
		flags = kernel.ODirect
	}
	f, err := osys.Open(p, "/mnt/data", flags)
	if err != nil {
		return 0, err
	}
	t0 := p.Now()
	total := 0
	for i := 0; i < reads; i++ {
		got, err := f.Read(p, as, bufs[i%ringSize], reqSize)
		if err != nil {
			return 0, err
		}
		if got == 0 {
			break
		}
		total += got
	}
	return mbps(total, p.Now()-t0), nil
}

func mbps(bytes int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func vecKernel(as *vm.AddressSpace, va vm.VirtAddr, n int) core.Vector {
	return core.Of(core.KernelSeg(as, va, n))
}

// RunFileBench is the generic entry point behind cmd/orfsbench: file
// read throughput over a named transport and access type.
func RunFileBench(transport, access string, sizes []int, cfg Config) ([]netpipe.Point, error) {
	return RunFileBenchOpt(transport, access, 1, sizes, cfg)
}

// RunFileBenchOpt is RunFileBench with the ablation knobs exposed:
// combine sets the buffered-read combining factor, and the transport
// "gm-nophys" runs GM without the paper's physical-address extension.
func RunFileBenchOpt(transport, access string, combine int, sizes []int, cfg Config) ([]netpipe.Point, error) {
	o := faOpts{combine: combine}
	switch transport {
	case "gm":
		o.tr = fsGM
	case "gm-nocache":
		o.tr = fsGMNoCache
	case "gm-nophys":
		o.tr = fsGM
		o.noPhys = true
	case "mx":
		o.tr = fsMX
	default:
		return nil, fmt.Errorf("figures: unknown transport %q", transport)
	}
	switch access {
	case "buffered":
	case "direct":
		o.direct = true
	case "orfa":
		o.userSpace, o.direct = true, true
	default:
		return nil, fmt.Errorf("figures: unknown access type %q", access)
	}
	return cfg.fileAccessOpt(o, sizes)
}

// Fig3b reproduces Figure 3(b): direct remote file access on GM, with
// and without the registration cache; ORFA vs ORFS; raw GM reference.
func (c Config) Fig3b() (*Figure, error) {
	sizes := netpipe.Sizes(64 * 1024)
	raw, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 1<<17))
	if err != nil {
		return nil, err
	}
	orfaCached, err := c.fileAccess(fsGM, true, true, sizes)
	if err != nil {
		return nil, err
	}
	orfsCached, err := c.fileAccess(fsGM, false, true, sizes)
	if err != nil {
		return nil, err
	}
	orfsNoCache, err := c.fileAccess(fsGMNoCache, false, true, sizes)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig3b", Title: "Direct access in ORFS/ORFA over GM and the registration cache",
		XLabel: "message size (bytes)", YLabel: "throughput (MB/s)",
		Series: []netpipe.Series{
			{Label: "GM Raw", Points: raw},
			{Label: "ORFA with Registration Cache", Points: orfaCached},
			{Label: "ORFS with Registration Cache", Points: orfsCached},
			{Label: "ORFS without Reg. Cache", Points: orfsNoCache},
		},
		Expected: "no-cache ≈20% below cached ORFS; ORFS slightly below ORFA " +
			"(syscall+VFS overhead); both below raw GM",
	}, nil
}

// Fig4b reproduces Figure 4(b): ORFS/GM direct vs buffered access vs
// raw GM.
func (c Config) Fig4b() (*Figure, error) {
	sizes := netpipe.Sizes(1 << 20)
	raw, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 1<<20))
	if err != nil {
		return nil, err
	}
	direct, err := c.fileAccess(fsGM, false, true, sizes)
	if err != nil {
		return nil, err
	}
	buffered, err := c.fileAccess(fsGM, false, false, sizes)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig4b", Title: "ORFS on GM: direct vs buffered access (physical-address API)",
		XLabel: "message size (bytes)", YLabel: "throughput (MB/s)",
		Series: []netpipe.Series{
			{Label: "ORFS/GM Direct Access", Points: direct},
			{Label: "ORFS/GM Buffered Access", Points: buffered},
			{Label: "GM Raw", Points: raw},
		},
		Expected: "≤4KB requests: buffered wins (page cache amortizes fetches); " +
			"large requests: direct wins (buffered capped by per-page, page-sized network requests)",
	}, nil
}

// Fig7a reproduces Figure 7(a): direct file access, GM vs MX.
func (c Config) Fig7a() (*Figure, error) {
	sizes := netpipe.Sizes(1 << 20)
	gmRaw, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 1<<20))
	if err != nil {
		return nil, err
	}
	mxRaw, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 1<<20, true))
	if err != nil {
		return nil, err
	}
	gmDirect, err := c.fileAccess(fsGM, false, true, sizes)
	if err != nil {
		return nil, err
	}
	mxDirect, err := c.fileAccess(fsMX, false, true, sizes)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig7a", Title: "ORFS direct access: GM vs MX",
		XLabel: "message size (bytes)", YLabel: "throughput (MB/s)",
		Series: []netpipe.Series{
			{Label: "GM", Points: gmRaw},
			{Label: "ORFS/GM Direct", Points: gmDirect},
			{Label: "MX Kernel", Points: mxRaw},
			{Label: "ORFS/MX Direct", Points: mxDirect},
		},
		Expected: "ORFS/MX slightly above ORFS/GM (mirroring the raw difference); " +
			"GM figure benefits from 100% registration-cache hits",
	}, nil
}

// Fig7b reproduces Figure 7(b): buffered file access, GM vs MX.
func (c Config) Fig7b() (*Figure, error) {
	sizes := netpipe.Sizes(1 << 20)
	gmRaw, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 1<<20))
	if err != nil {
		return nil, err
	}
	mxRaw, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 1<<20, true))
	if err != nil {
		return nil, err
	}
	gmBuf, err := c.fileAccess(fsGM, false, false, sizes)
	if err != nil {
		return nil, err
	}
	mxBuf, err := c.fileAccess(fsMX, false, false, sizes)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig7b", Title: "ORFS buffered access: GM vs MX",
		XLabel: "message size (bytes)", YLabel: "throughput (MB/s)",
		Series: []netpipe.Series{
			{Label: "GM", Points: gmRaw},
			{Label: "ORFS/GM Buffered", Points: gmBuf},
			{Label: "MX Kernel", Points: mxRaw},
			{Label: "ORFS/MX Buffered", Points: mxBuf},
		},
		Expected: "ORFS/MX buffered ≈ +40% over ORFS/GM (the improved kernel interface), " +
			"although raw MX is not faster than raw GM at page size",
	}, nil
}
