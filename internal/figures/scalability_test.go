package figures

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// TestScalabilityWindowSpeedup is the PR's acceptance bar: aggregate
// ORFS-direct throughput at window 8 must exceed the synchronous
// (window 1) baseline by at least 25%.
func TestScalabilityWindowSpeedup(t *testing.T) {
	c := DefaultConfig()
	base, err := c.scalRun("orfs-direct", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := c.scalRun("orfs-direct", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wide.mbps < base.mbps*1.25 {
		t.Errorf("window 8 = %.1f MB/s, want >= 1.25x window 1 (%.1f MB/s)", wide.mbps, base.mbps)
	}
	t.Logf("orfs-direct: window 1 = %.1f MB/s, window 8 = %.1f MB/s (%.0f%%)",
		base.mbps, wide.mbps, 100*(wide.mbps/base.mbps-1))
}

// TestScalabilityBufferedAndNBDWindows: the other two scenarios must
// also gain from the window (readahead and queued block requests).
func TestScalabilityBufferedAndNBDWindows(t *testing.T) {
	c := DefaultConfig()
	for _, scen := range []string{"orfs-buffered", "nbd"} {
		base, err := c.scalRun(scen, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := c.scalRun(scen, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if wide.mbps <= base.mbps {
			t.Errorf("%s: window 8 = %.1f MB/s not above window 1 = %.1f MB/s", scen, wide.mbps, base.mbps)
		}
	}
}

// TestWindowOneMatchesSynchronousClient: a window-1 session must add
// zero simulated cost — the same workload through the raw synchronous
// client produces the exact same aggregate throughput (this is the
// property that keeps Fig 7(a)/7(b) bit-identical).
func TestWindowOneMatchesSynchronousClient(t *testing.T) {
	c := DefaultConfig()
	viaSession, err := c.scalRun("orfs-direct", 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// The same workload, written against the synchronous client.
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := cl.AddNode("server")
	serverFS := memfs.New("backing", server, 0)
	srv := rfsrv.NewServer(server, serverFS)
	if _, err := srv.ServeMX(mx.Attach(server), 1, 4); err != nil {
		t.Fatal(err)
	}
	var syncMBps float64
	var failure error
	env.Spawn("seed", func(p *sim.Proc) {
		seedVA, _ := server.Kernel.Mmap(scalFilePerCli, "seed")
		attr, err := serverFS.Create(p, serverFS.Root(), "f0")
		if err != nil {
			failure = err
			return
		}
		if _, err := serverFS.WriteDirect(p, attr.Ino, 0, vecKernel(server.Kernel, seedVA, scalFilePerCli)); err != nil {
			failure = err
			return
		}
		node := cl.AddNode("client0")
		env.Spawn("cl0", func(p *sim.Proc) {
			fc, err := rfsrv.NewMXClient(mx.Attach(node), 10, true, node.Kernel, server.ID, 1)
			if err != nil {
				failure = err
				return
			}
			va, _ := node.Kernel.Mmap(scalChunk, "scal-buf")
			t0 := p.Now()
			for off := int64(0); off < scalFilePerCli; off += scalChunk {
				if _, err := fc.Read(p, attr.Ino, off, core.Of(core.KernelSeg(node.Kernel, va, scalChunk))); err != nil {
					failure = err
					return
				}
			}
			syncMBps = mbps(scalFilePerCli, p.Now()-t0)
		})
	})
	env.Run(0)
	if failure != nil {
		t.Fatal(failure)
	}
	if syncMBps != viaSession.mbps {
		t.Errorf("window-1 session %.6f MB/s != synchronous client %.6f MB/s", viaSession.mbps, syncMBps)
	}
	_ = kernel.ErrBadOffset
}
