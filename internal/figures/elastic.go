package figures

// This file holds the elastic-membership suite (DESIGN.md §13): one
// run that walks the full lifecycle the elastic layer promises —
// healthy traffic, a mid-run server kill, degraded operation, heal,
// journaled-replay re-admission (Reinstate replays what each client's
// journal recorded instead of refusing), and finally a live Join that
// expands the cluster from N to N+1 under load — while measuring
// aggregate client throughput in every phase.
//
// The setup is the degraded suite's replicated unsharded cluster with
// a membership view layered on: an operator cluster on its own node
// publishes a shared MemberView (initial members = the first N of N+1
// sessions; the last slot stands by), every client attaches to it, and
// the reply deadline is calibrated from a fault-free baseline exactly
// like the degraded suite. Clients stream synchronous stripe reads
// with periodic overwrites mixed in, so the exclusion window leaves
// real dirty data in the journals and Reinstate has bytes to replay.
// Synchronous ops are deliberate: a client blocked at the membership
// fence cannot retire pipelined pendings, so a Start/Wait pipeline
// against a fencing view must drain before blocking — the simple
// always-drained shape is the one the suite measures.
//
// The acceptance number is the last row: post-expansion throughput
// (N+1 servers, fresh epoch, stripes re-placed) at or above 0.9x the
// pre-kill rate — growing the cluster must not cost the steady state.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// elServers is the total session count: elActive initial members
	// plus one standby slot the Join admits.
	elServers = 4
	// elActive is the initial membership width.
	elActive = 3
	// elJoiner is the standby session slot Join admits mid-run.
	elJoiner = 3
	// elVictim is the member slot the schedule kills, heals and
	// re-admits. Slot 1: a member, never the minting home (slot 0), so
	// the kill exercises failover and journaling, not namespace loss.
	elVictim = 1
	// elReplicas is the replication factor: 2 survives the kill.
	elReplicas = 2
	// elWindow is the per-server session window.
	elWindow = 4
	// elClients is the streaming client count.
	elClients = 6
	// elStripes is each client's file length in stripes: enough that
	// reads sweep the whole placement ring every few iterations.
	elStripes = 12
	// elWriteEvery mixes one stripe overwrite into every so many
	// reads, so an excluded server accumulates journaled dirty data.
	elWriteEvery = 6
)

// Phase durations (virtual). The schedule is time-driven: traffic
// runs elPreDur healthy, the victim is dark elDwellDur, clients heal
// two deadlines after the revive, the Join runs once every client is
// clean, and the run samples elTailDur of post-expansion steady state.
const (
	elPreDur   = 2 * sim.Time(1e6) // 2ms
	elDwellDur = 1 * sim.Time(1e6) // 1ms
	elTailDur  = 2 * sim.Time(1e6) // 2ms
)

// elCtl is the shared phase state between the controller proc and the
// clients (cooperative scheduling: plain fields, no locks).
type elCtl struct {
	heal bool // clients may Reinstate their exclusions now
	done bool // clients drain and exit
}

// elResult is one elastic run: per-phase timestamps, every client's
// read-completion samples, the worst request latency (deadline
// calibration), and the membership/recovery accounting.
type elResult struct {
	started, finished sim.Time
	killAt, healAt    sim.Time
	joinStart, cutAt  sim.Time
	samples           []dgSample
	maxLat            sim.Time

	failovers, reinstates, refusals int64
	resyncOps, spills               int64
	resyncBytes, migratedBytes      int64
	epoch                           uint64
	members                         []int
}

// window returns aggregate read throughput over [from, to).
func (r *elResult) window(from, to sim.Time) float64 {
	var b int
	for _, s := range r.samples {
		if s.at >= from && s.at < to {
			b += s.bytes
		}
	}
	return mbps(b, to-from)
}

// elClient streams synchronous stripe reads (with periodic stripe
// overwrites) against its own file until the controller flags done,
// re-admitting its exclusions once heal is up. The cluster is
// published through reg as soon as it is built, so the controller can
// poll exclusion state while the client is still streaming.
func elClient(p *sim.Proc, node *hw.Node, serverIDs []hw.NodeID, peers []*rfsrv.Server,
	view *rfsrv.MemberView, ino kernel.InodeID, timeout sim.Time,
	ctl *elCtl, res *elResult, reg func(*rfsrv.Cluster)) error {
	cl, err := msClusterRep(p, node, serverIDs, elWindow, elReplicas, timeout)
	if err != nil {
		return err
	}
	reg(cl)
	if err := cl.SetResyncPeers(peers); err != nil {
		return err
	}
	if view != nil {
		cl.AttachView(view)
	}
	va, err := node.Kernel.Mmap(msStripe, "el-buf")
	if err != nil {
		return err
	}
	buf := vecKernel(node.Kernel, va, msStripe)
	read := func(off int64) error {
		issued := p.Now()
		resp, err := cl.Read(p, ino, off, buf)
		if err != nil {
			return err
		}
		if lat := p.Now() - issued; lat > res.maxLat {
			res.maxLat = lat
		}
		res.samples = append(res.samples, dgSample{at: p.Now(), bytes: int(resp.N)})
		return nil
	}
	write := func(off int64, v core.Vector) error {
		issued := p.Now()
		if _, err := cl.Write(p, ino, off, v); err != nil {
			return err
		}
		if lat := p.Now() - issued; lat > res.maxLat {
			res.maxLat = lat
		}
		return nil
	}
	for k := 0; !ctl.done; k++ {
		if ctl.heal {
			for _, s := range cl.DownServers() {
				// A replay interrupted by residual timeouts keeps the
				// journal and is retried on the next pass.
				if err := cl.Reinstate(p, s); err != nil {
					break
				}
			}
		}
		if err := read(int64(k%elStripes) * msStripe); err != nil {
			return err
		}
		if k%elWriteEvery == elWriteEvery-1 {
			// Rotate overwrites with a stride coprime to the stripe
			// count, so dirty data spreads across the placement ring.
			if err := write(int64((k*5)%elStripes)*msStripe, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// elRun executes one elastic lifecycle on a fresh simulated cluster.
// timeout == 0 runs the fault-free calibration baseline: no kill, no
// join, just elPreDur+elTailDur of healthy traffic measuring makespan
// throughput and worst latency.
func (c Config) elRun(timeout sim.Time) (*elResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	var (
		serverNodes []*hw.Node
		serverIDs   []hw.NodeID
		serverFS    []*memfs.FS
		servers     []*rfsrv.Server
	)
	for j := 0; j < elServers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverNodes = append(serverNodes, n)
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		serverFS = append(serverFS, fs)
		srv := rfsrv.NewServer(n, fs)
		if _, err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
			return nil, err
		}
		servers = append(servers, srv)
	}
	opNode := cl.AddNode("operator")

	res := &elResult{}
	ctl := &elCtl{}
	clusters := make([]*rfsrv.Cluster, elClients)
	var failure error
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
		ctl.done = true
	}
	done := 0
	env.Spawn("el-setup", func(p *sim.Proc) {
		// Seed the initial members only: the standby slot's store is
		// rebuilt by the Join from the authoritative snapshot.
		inos, err := msSeedStriped(p, serverFS[:elActive], serverNodes[:elActive],
			elClients, elStripes*msStripe, elReplicas)
		if err != nil {
			fail(err)
			return
		}
		// The operator cluster publishes the shared membership view
		// (members = the first elActive slots) and holds the bulk
		// resync channel for the Join's store rebuild.
		op, err := msClusterRep(p, opNode, serverIDs, elWindow, elReplicas, timeout)
		if err != nil {
			fail(err)
			return
		}
		if err := op.SetMembers(elActive); err != nil {
			fail(err)
			return
		}
		if err := op.SetResyncPeers(servers); err != nil {
			fail(err)
			return
		}
		view := op.ShareView()
		res.started = p.Now()
		for i := 0; i < elClients; i++ {
			i := i
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			env.Spawn(fmt.Sprintf("el-c%d", i), func(p *sim.Proc) {
				err := elClient(p, node, serverIDs, servers, view, inos[i], timeout, ctl, res,
					func(cluster *rfsrv.Cluster) { clusters[i] = cluster })
				if err != nil {
					fail(err)
					return
				}
				if p.Now() > res.finished {
					res.finished = p.Now()
				}
				done++
			})
		}
		env.Spawn("el-controller", func(p *sim.Proc) {
			p.Sleep(elPreDur)
			if timeout == 0 {
				// Baseline: healthy traffic only.
				p.Sleep(elTailDur)
				ctl.done = true
				return
			}
			res.killAt = p.Now()
			serverNodes[elVictim].NIC.Kill()
			p.Sleep(elDwellDur)
			serverNodes[elVictim].NIC.Revive()
			// Two deadlines: every flight lost to the kill has expired
			// and late frames have drained; then clients re-admit via
			// journal replay.
			p.Sleep(2 * timeout)
			res.healAt = p.Now()
			ctl.heal = true
			for polls := 0; ; polls++ {
				if ctl.done {
					return
				}
				clean := true
				for _, cluster := range clusters {
					if cluster == nil || len(cluster.DownServers()) > 0 {
						clean = false
						break
					}
				}
				if clean {
					break
				}
				if polls > 400 {
					state := ""
					for i, cluster := range clusters {
						if cluster != nil {
							state += fmt.Sprintf(" c%d:down=%v reinst=%d refus=%d", i,
								cluster.DownServers(), cluster.Reinstates.N, cluster.ReinstateRefusals.N)
						}
					}
					fail(fmt.Errorf("figures: elastic clients never healed:%s", state))
					return
				}
				p.Sleep(50 * sim.Time(1e3))
			}
			// Expand N -> N+1 under load: online stripe migration, then
			// the epoch cutover every attached client adopts.
			res.joinStart = p.Now()
			if err := op.Join(p, elJoiner); err != nil {
				fail(fmt.Errorf("join of standby slot %d: %w", elJoiner, err))
				return
			}
			res.cutAt = p.Now()
			res.epoch = view.Epoch()
			res.members = view.Members()
			res.migratedBytes = op.Migrated.Bytes
			p.Sleep(elTailDur)
			ctl.done = true
		})
	})
	env.Run(0)
	if failure != nil {
		return nil, failure
	}
	if done != elClients {
		return nil, fmt.Errorf("figures: %d/%d elastic clients finished", done, elClients)
	}
	for _, cluster := range clusters {
		if cluster != nil {
			res.failovers += cluster.Failovers.N
			res.reinstates += cluster.Reinstates.N
			res.refusals += cluster.ReinstateRefusals.N
			res.resyncOps += cluster.ResyncOps.N
			res.resyncBytes += cluster.ResyncBytes.Bytes
			res.spills += cluster.ResyncSpills.N
		}
	}
	return res, nil
}

// elPhases derives the per-phase throughput rows of a faulted run:
// pre-kill, degraded (post-settle, victim dark or excluded), and
// post-expansion steady state.
func elPhases(res *elResult, timeout sim.Time) (pre, degraded, post float64) {
	pre = res.window(res.started, res.killAt)
	degraded = res.window(res.killAt+timeout, res.healAt)
	post = res.window(res.cutAt, res.finished)
	return
}

// ElasticStats carries the elastic suite's raw numbers for the
// machine-readable benchmark snapshot (cmd/figures -json).
type ElasticStats struct {
	PreMBps, DegradedMBps, PostMBps float64
	Reinstates, Refusals, Spills    int64
	ResyncOps                       int64
	ResyncBytes, MigratedBytes      int64
	Epoch                           uint64
	Members                         []int
}

// Elastic runs the elastic-membership lifecycle and returns its two
// tables — per-phase aggregate throughput across kill, heal,
// journaled-replay re-admission and live N->N+1 expansion, and the
// recovery/migration accounting behind it — plus the raw stats for
// the benchmark snapshot.
func (c Config) Elastic() ([]*Table, *ElasticStats, error) {
	base, err := c.elRun(0)
	if err != nil {
		return nil, nil, err
	}
	timeout := base.maxLat * 5 / 2
	res, err := c.elRun(timeout)
	if err != nil {
		return nil, nil, err
	}
	pre, degraded, post := elPhases(res, timeout)
	baseline := base.window(base.started, base.finished)
	phases := &Table{
		ID: "elastic",
		Title: fmt.Sprintf("Elastic membership: throughput across kill -> heal -> replayed re-admission -> Join %d->%d under load (%d clients, R=%d, deadline 2.5x max fault-free latency)",
			elActive, elActive+1, elClients, elReplicas),
		Columns: []string{"phase", "servers", "window ms", "MB/s", "vs pre-kill"},
		Rows: [][]string{
			{"fault-free baseline", fmt.Sprintf("%d", elActive),
				fmt.Sprintf("%.1f", ms(base.finished-base.started)),
				fmt.Sprintf("%.1f", baseline), "-"},
			{"pre-kill", fmt.Sprintf("%d", elActive),
				fmt.Sprintf("%.1f", ms(res.killAt-res.started)),
				fmt.Sprintf("%.1f", pre), "1.00"},
			{"degraded (victim excluded)", fmt.Sprintf("%d", elActive-1),
				fmt.Sprintf("%.1f", ms(res.healAt-res.killAt-timeout)),
				fmt.Sprintf("%.1f", degraded), fmt.Sprintf("%.2f", degraded/pre)},
			{"post-expansion", fmt.Sprintf("%d", elActive+1),
				fmt.Sprintf("%.1f", ms(res.finished-res.cutAt)),
				fmt.Sprintf("%.1f", post), fmt.Sprintf("%.2f", post/pre)},
		},
		Expected: "beyond the paper (its platform is static): the kill degrades " +
			"throughput, journaled replay re-admits the healed server without an " +
			"out-of-band resync, and the live Join restores at least 0.9x the " +
			"pre-kill rate on the expanded cluster",
	}
	accounting := &Table{
		ID:    "elastic-recovery",
		Title: "Elastic membership: recovery and migration accounting of the run above",
		Columns: []string{"reinstates", "refusals", "resync ops", "resync KB",
			"spills", "join migrated KB", "epoch", "members"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.reinstates),
			fmt.Sprintf("%d", res.refusals),
			fmt.Sprintf("%d", res.resyncOps),
			fmt.Sprintf("%.0f", float64(res.resyncBytes)/1024),
			fmt.Sprintf("%d", res.spills),
			fmt.Sprintf("%.0f", float64(res.migratedBytes)/1024),
			fmt.Sprintf("%d", res.epoch),
			fmt.Sprintf("%v", res.members),
		}},
		Expected: "every exclusion re-admits through journal replay (no refusals, " +
			"no spills, resync bytes > 0 from the overwrites the victim missed), " +
			"and the Join migrates every stripe the joiner now owns",
	}
	stats := &ElasticStats{
		PreMBps: pre, DegradedMBps: degraded, PostMBps: post,
		Reinstates: res.reinstates, Refusals: res.refusals, Spills: res.spills,
		ResyncOps: res.resyncOps, ResyncBytes: res.resyncBytes,
		MigratedBytes: res.migratedBytes, Epoch: res.epoch, Members: res.members,
	}
	return []*Table{phases, accounting}, stats, nil
}

// ms renders a virtual duration in milliseconds.
func ms(d sim.Time) float64 { return float64(d) / 1e6 }
