package figures

// Tests for the metadata suite: the sharded-namespace acceptance bar
// (create/unlink throughput must scale with the server count) and the
// fan-out baseline staying exercised.

import "testing"

// TestMetadataShardedScales is the acceptance bar: the sharded
// create/unlink storm must deliver at least 1.5× the aggregate ops/s
// at 8 servers that it does at 1 — the scaling the replicated
// namespace's O(N) fan structurally cannot produce. Short mode
// checks 4 servers against the same bar.
func TestMetadataShardedScales(t *testing.T) {
	c := DefaultConfig()
	wide := 8
	if testing.Short() {
		wide = 4
	}
	one, err := c.mdRun("create-unlink", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := c.mdRun("create-unlink", true, wide)
	if err != nil {
		t.Fatal(err)
	}
	if many < 1.5*one {
		t.Errorf("sharded create/unlink: %.0f ops/s at %d servers vs %.0f at 1 (%.2fx, want >= 1.5x)",
			many, wide, one, many/one)
	}
	t.Logf("sharded create/unlink: %.0f ops/s at 1 server, %.0f at %d (%.2fx)", one, many, wide, many/one)
}

// TestMetadataFanoutRuns keeps the baseline honest: the replicated
// fan-out configuration must still complete every scenario (its
// create/unlink storm serialized, the rest concurrent).
func TestMetadataFanoutRuns(t *testing.T) {
	c := DefaultConfig()
	for _, scen := range mdScenarios {
		if _, err := c.mdRun(scen, false, 2); err != nil {
			t.Fatalf("%s fan-out: %v", scen, err)
		}
	}
}

// TestMetadataRenameSharded drives the rename chains over the sharded
// namespace — every adjacent directory pair with distinct owner
// groups takes the cross-owner multi-phase path.
func TestMetadataRenameSharded(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.mdRun("rename", true, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.mdRun("readdir", true, 4); err != nil {
		t.Fatal(err)
	}
}
