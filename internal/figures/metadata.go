package figures

// This file holds the metadata suite: the workload the sharded
// namespace (DESIGN.md §11) exists for. The small-file suite showed
// the DATA of small files escaping the stripe-0 owner; here there is
// no data at all — K clients storm the cluster with pure namespace
// operations (create/unlink batches, readdir scans, rename chains)
// against two client/server configurations:
//
//   - fan-out: the replicated namespace. Every mutation fans to all N
//     servers, so adding servers adds work per operation — mutation
//     throughput is flat-to-falling in N. Concurrent creates are not
//     even safe (different fan interleavings could diverge the
//     replicated inode assignment), so this mode's create/unlink
//     storm runs serialized across clients — itself part of the
//     story.
//   - sharded: directory-owned metadata. Each directory (and the
//     files under it) has one owner group; mutations go only there,
//     different directories' storms land on different servers, and
//     batched combining packs each client's share per server. All
//     storms run fully concurrently.
//
// The interesting number is aggregate namespace ops/s against the
// server count. The acceptance bar (TestMetadataShardedScales) is
// that the sharded create/unlink storm gains at least 1.5× from N=1
// to N=8 — the scaling the O(N) fan structurally cannot produce.

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/netpipe"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// mdClients is the storming client count.
	mdClients = 4
	// mdDirsPerCli is each client's private directory count: its storm
	// spreads over them, so under sharding one client's mutations land
	// on several owner groups.
	mdDirsPerCli = 4
	// mdBatch is the MetaBatch size of the storms (16 requests per
	// combined batch — two window-8 flights on one server, one short
	// flight each on many).
	mdBatch = 16
	// mdRounds is the create/unlink storm's round count per client:
	// each round creates a batch of files and unlinks it again.
	mdRounds = 6
	// mdReaddirRounds is the readdir storm's round count per client.
	mdReaddirRounds = 12
	// mdRenames is the rename chain length per client: one file walked
	// around the client's directory ring, one serial rename at a time.
	mdRenames = 48
)

// mdServersAxis is the swept server count.
var mdServersAxis = []int{1, 2, 4, 8}

// mdScenarios names the three workloads.
var mdScenarios = []string{"create-unlink", "readdir", "rename"}

// mdModes names the two namespace configurations.
var mdModes = []string{"fan-out", "sharded"}

// mdRun executes one scenario at one (sharded?, servers) point on a
// fresh simulated cluster and returns aggregate namespace ops/s.
func (c Config) mdRun(scenario string, sharded bool, servers int) (float64, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)

	var serverIDs []hw.NodeID
	for j := 0; j < servers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		srv := rfsrv.NewServer(n, fs)
		if sharded {
			fs.SetInodePartition(j, servers)
			if err := srv.EnableSharding(j, servers, 1); err != nil {
				return 0, err
			}
		}
		if _, err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
			return 0, err
		}
	}

	var (
		failure  error
		started  sim.Time
		finished sim.Time
		done     int
		ops      int
	)
	env.Spawn("setup", func(p *sim.Proc) {
		// Clusters and directories are set up serially: in fan-out mode
		// concurrent namespace minting is unsafe (see the file comment),
		// and keeping setup identical across modes keeps the storms the
		// only difference.
		clusters := make([]*rfsrv.Cluster, mdClients)
		dirs := make([][]kernel.InodeID, mdClients)
		files := make([][]kernel.InodeID, mdClients)
		for i := 0; i < mdClients; i++ {
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			cluster, err := msCluster(p, node, serverIDs, msWindow)
			if err != nil {
				failure = err
				return
			}
			if sharded {
				if err := cluster.EnableShardedNamespace(); err != nil {
					failure = err
					return
				}
			}
			clusters[i] = cluster
			for d := 0; d < mdDirsPerCli; d++ {
				resp, err := cluster.Meta(p, &rfsrv.Req{
					Op: rfsrv.OpMkdir, Ino: 0, Name: fmt.Sprintf("c%d-d%d", i, d),
				})
				if err != nil {
					failure = err
					return
				}
				dirs[i] = append(dirs[i], resp.Attr.Ino)
			}
			if err := mdSeedScenario(p, scenario, cluster, dirs[i], &files[i], i); err != nil {
				failure = err
				return
			}
		}
		started = p.Now()
		if scenario == "create-unlink" && !sharded {
			// The replicated namespace cannot run concurrent creates
			// safely; its storm is the serialized best case.
			for i := 0; i < mdClients; i++ {
				n, err := mdStorm(p, scenario, clusters[i], dirs[i], files[i], i)
				if err != nil {
					failure = err
					return
				}
				ops += n
			}
			finished = p.Now()
			done = mdClients
			return
		}
		for i := 0; i < mdClients; i++ {
			i := i
			env.Spawn(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
				n, err := mdStorm(p, scenario, clusters[i], dirs[i], files[i], i)
				if err != nil {
					if failure == nil {
						failure = err
					}
					return
				}
				ops += n
				if p.Now() > finished {
					finished = p.Now()
				}
				done++
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return 0, failure
	}
	if done != mdClients {
		return 0, fmt.Errorf("figures: %d/%d metadata clients finished (%s sharded=%v s=%d)", done, mdClients, scenario, sharded, servers)
	}
	span := finished - started
	if span <= 0 {
		return 0, fmt.Errorf("figures: metadata storm took no time (%s sharded=%v s=%d)", scenario, sharded, servers)
	}
	return float64(ops) / span.Seconds(), nil
}

// mdSeedScenario performs the scenario's per-client setup: the
// readdir storm scans pre-created files, the rename chain walks one.
func mdSeedScenario(p *sim.Proc, scenario string, cluster *rfsrv.Cluster, dirs []kernel.InodeID, files *[]kernel.InodeID, id int) error {
	var names []string
	switch scenario {
	case "readdir":
		// mdBatch-mdDirsPerCli getattr victims per batch round.
		for k := 0; k < mdBatch-mdDirsPerCli; k++ {
			names = append(names, fmt.Sprintf("c%d-s%d", id, k))
		}
	case "rename":
		names = []string{fmt.Sprintf("c%d-x0", id)}
	default:
		return nil
	}
	for k, name := range names {
		resp, err := cluster.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: dirs[k%len(dirs)], Name: name})
		if err != nil {
			return err
		}
		*files = append(*files, resp.Attr.Ino)
	}
	return nil
}

// mdStorm runs one client's storm and returns its operation count.
func mdStorm(p *sim.Proc, scenario string, cluster *rfsrv.Cluster, dirs, files []kernel.InodeID, id int) (int, error) {
	switch scenario {
	case "create-unlink":
		return mdCreateUnlinkStorm(p, cluster, dirs, id)
	case "readdir":
		return mdReaddirStorm(p, cluster, dirs, files)
	case "rename":
		return mdRenameStorm(p, cluster, dirs, id)
	}
	return 0, fmt.Errorf("figures: unknown metadata scenario %q", scenario)
}

// mdCreateUnlinkStorm creates a batch of files spread over the
// client's directories, then unlinks the batch, mdRounds times — all
// through combined MetaBatch requests.
func mdCreateUnlinkStorm(p *sim.Proc, cluster *rfsrv.Cluster, dirs []kernel.InodeID, id int) (int, error) {
	ops := 0
	for round := 0; round < mdRounds; round++ {
		for _, op := range []rfsrv.Op{rfsrv.OpCreate, rfsrv.OpUnlink} {
			reqs := make([]*rfsrv.Req, mdBatch)
			for k := range reqs {
				reqs[k] = &rfsrv.Req{Op: op, Ino: dirs[k%len(dirs)],
					Name: fmt.Sprintf("c%d-r%d-f%d", id, round, k)}
			}
			if _, err := cluster.MetaBatch(p, reqs); err != nil {
				return 0, err
			}
			ops += mdBatch
		}
	}
	return ops, nil
}

// mdReaddirStorm scans the client's directories and getattrs its
// files, mdReaddirRounds times, one combined batch per round.
func mdReaddirStorm(p *sim.Proc, cluster *rfsrv.Cluster, dirs, files []kernel.InodeID) (int, error) {
	ops := 0
	for round := 0; round < mdReaddirRounds; round++ {
		reqs := make([]*rfsrv.Req, 0, len(dirs)+len(files))
		for _, d := range dirs {
			reqs = append(reqs, &rfsrv.Req{Op: rfsrv.OpReaddir, Ino: d})
		}
		for _, f := range files {
			reqs = append(reqs, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: f})
		}
		if _, err := cluster.MetaBatch(p, reqs); err != nil {
			return 0, err
		}
		ops += len(reqs)
	}
	return ops, nil
}

// mdRenameStorm walks the client's chain file around its directory
// ring: one serial rename per step, each a cross-owner multi-phase
// rename whenever the adjacent directories' owner groups differ.
func mdRenameStorm(p *sim.Proc, cluster *rfsrv.Cluster, dirs []kernel.InodeID, id int) (int, error) {
	name := fmt.Sprintf("c%d-x0", id)
	for r := 0; r < mdRenames; r++ {
		from := dirs[r%len(dirs)]
		to := dirs[(r+1)%len(dirs)]
		if _, err := cluster.Rename(p, from, name, to, name); err != nil {
			return 0, err
		}
	}
	return mdRenames, nil
}

// Metadata runs the whole suite and returns one figure: aggregate
// namespace ops/s against the server count, one series per
// (scenario, mode).
func (c Config) Metadata() ([]*Figure, error) {
	var series []netpipe.Series
	for _, scen := range mdScenarios {
		for _, mode := range mdModes {
			var s netpipe.Series
			s.Label = scen + " " + mode
			for _, n := range mdServersAxis {
				ops, err := c.mdRun(scen, mode == "sharded", n)
				if err != nil {
					return nil, err
				}
				s.Points = append(s.Points, netpipe.Point{Size: n, MBps: ops})
			}
			series = append(series, s)
		}
	}
	fig := &Figure{
		ID: "metadata",
		Title: fmt.Sprintf("Namespace storm ops/s vs server count (%d clients, %d dirs each, batches of %d)",
			mdClients, mdDirsPerCli, mdBatch),
		XLabel: "servers", YLabel: "aggregate namespace ops/s",
		Series: series,
		Unit:   "ops/s",
		Expected: "beyond the paper: the replicated namespace fans every mutation to all N " +
			"servers (and must serialize concurrent creates), so its mutation throughput is " +
			"flat-to-falling in N; directory-owned sharding sends each mutation to one owner " +
			"group, so create/unlink and rename throughput should grow with the server count " +
			"(≥1.5× from 1 to 8 servers is the acceptance bar)",
	}
	return []*Figure{fig}, nil
}
