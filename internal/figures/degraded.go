package figures

// This file holds the degraded-operation suite: the repository's first
// fault-injected experiment, and the scenario family every later
// availability measurement builds on. The multiserver suite answered
// "how does aggregate throughput scale with servers?"; this one asks
// "what happens to that throughput when one of them dies mid-run?"
//
// The setup is the multiserver orfs-direct workload with three
// changes: every stripe is written to R=2 consecutive servers
// (rfsrv.NewReplicatedCluster); every session arms a per-request reply
// deadline (Session.SetRequestTimeout) so a request in flight to the
// dying server surfaces as a fault instead of hanging its window slot
// forever; and the workload is longer with a shallower window, so the
// deadline — which must dominate the worst legitimate queueing
// latency — stays small against the run. The deadline itself is
// calibrated from a fault-free baseline run (2.5x its worst observed
// latency), the way real deployments derive RPC timeouts from healthy
// tail latency. A scheduled NIC kill (hw.NIC.KillAfter) then takes one
// server off the fabric at a fixed fraction of the fault-free
// makespan; clients time out or get dead-peer rejections, exclude the
// victim, and fail their reads over to each stripe's replica.
//
// The interesting numbers are aggregate throughput before the kill,
// the settle window (one deadline long: every request in flight to the
// victim has expired by then, since deadlines run from issue), and the
// post-settle rate — the cluster serving every byte from N-1 servers,
// with the victim's read load folded onto its replicas.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// dgReplicas is the replication factor: 2 survives any single
	// server loss.
	dgReplicas = 2
	// dgWindow is the per-server session window. Shallower than the
	// multiserver suite's 8: queueing latency is proportional to the
	// outstanding bytes per server, and the reply deadline must
	// dominate the worst legitimate latency, so a shallow window keeps
	// the deadline — and with it the failover settle time — small
	// against the run length.
	dgWindow = 4
	// dgFilePerCli is each client's file: larger than the scalability
	// suites' so the run dwarfs the settle window and the post-failover
	// regime is actually observable.
	dgFilePerCli = 8 << 20
	// dgKillNum/dgKillDen place the kill at 2/5 of the fault-free
	// makespan: late enough for a stable "before" window, early enough
	// that most bytes move degraded.
	dgKillNum, dgKillDen = 2, 5
)

// dgTimeout calibrates the per-request reply deadline from a
// fault-free run's worst observed latency: 2.5x covers the post-kill
// inflation on the victim's replicas (their queues roughly double when
// they absorb its load) while staying far below the run length, so
// only requests genuinely lost to the kill expire. Real deployments do
// the same thing with their RPC timeouts: a multiple of the healthy
// tail latency.
func dgTimeout(base *dgResult) sim.Time {
	return base.maxLat * 5 / 2
}

// dgServersAxis is the swept server count (the victim is always
// server 0; with R=2 its stripes live on server 1 too).
var dgServersAxis = []int{3, 8}

// dgSample records one completed application read.
type dgSample struct {
	at    sim.Time // completion (virtual) time
	bytes int
}

// dgResult is one degraded run: the measurement window, every client's
// completion samples, the summed failover counters, and the worst
// request latency observed (the number dgTimeout must dominate).
type dgResult struct {
	started, finished   sim.Time
	samples             []dgSample
	maxLat              sim.Time
	failovers, excluded int64
}

// mbpsSplit returns aggregate throughput over [started, killAt) and
// [settleAt, finished] — the before/after-failover numbers of the
// suite. The settle window [killAt, settleAt) is excluded from the
// "after" rate: by construction (deadlines run from issue) every
// request in flight to the victim at the kill has expired by
// killAt+timeout, so the regime after settleAt is pure degraded
// operation; the settle window itself is reported as a duration.
func (r *dgResult) mbpsSplit(killAt, settleAt sim.Time) (pre, post float64) {
	var preB, postB int
	for _, s := range r.samples {
		if s.at < killAt {
			preB += s.bytes
		} else if s.at >= settleAt {
			postB += s.bytes
		}
	}
	return mbps(preB, killAt-r.started), mbps(postB, r.finished-settleAt)
}

// mbpsTotal returns whole-run aggregate throughput.
func (r *dgResult) mbpsTotal() float64 {
	var b int
	for _, s := range r.samples {
		b += s.bytes
	}
	return mbps(b, r.finished-r.started)
}

// dgSeed lays the replicated striped layout down server-side: the
// shared seeding helper at this suite's file size and R.
func dgSeed(p *sim.Proc, serverFS []*memfs.FS, servers []*hw.Node, clients int) ([]kernel.InodeID, error) {
	return msSeedStriped(p, serverFS, servers, clients, dgFilePerCli, dgReplicas)
}

// dgCluster wires one client node to every server: the shared cluster
// builder at this suite's window and R, with the reply deadline armed
// (timeout 0 leaves deadlines off — the calibration baseline).
func dgCluster(p *sim.Proc, node *hw.Node, servers []hw.NodeID, timeout sim.Time) (*rfsrv.Cluster, error) {
	return msClusterRep(p, node, servers, dgWindow, dgReplicas, timeout)
}

// dgClient runs one client's pipelined striped reads (the multiserver
// orfs-direct workload) and returns its completion samples and its
// cluster (for the failover counters).
func dgClient(p *sim.Proc, node *hw.Node, servers []hw.NodeID, ino kernel.InodeID, timeout sim.Time) ([]dgSample, sim.Time, *rfsrv.Cluster, error) {
	var maxLat sim.Time
	cluster, err := dgCluster(p, node, servers, timeout)
	if err != nil {
		return nil, 0, nil, err
	}
	window := cluster.Window()
	bufs := make([]core.Vector, window)
	for i := range bufs {
		va, err := node.Kernel.Mmap(msStripe, "dg-buf")
		if err != nil {
			return nil, 0, cluster, err
		}
		bufs[i] = vecKernel(node.Kernel, va, msStripe)
	}
	var q []rfsrv.PendingOp
	var samples []dgSample
	retire := func(pd rfsrv.PendingOp) error {
		resp, err := pd.Wait(p)
		if err != nil {
			return err
		}
		if lat := p.Now() - pd.Issued(); lat > maxLat {
			maxLat = lat
		}
		samples = append(samples, dgSample{at: p.Now(), bytes: int(resp.N)})
		return nil
	}
	reads := dgFilePerCli / msStripe
	for issued := 0; issued < reads; issued++ {
		off := int64(issued) * msStripe
		for len(q) > 0 && (len(q) == window || !cluster.CanStart(ino, off, msStripe)) {
			pd := q[0]
			q = q[1:]
			if err := retire(pd); err != nil {
				return nil, 0, cluster, err
			}
		}
		pd, err := cluster.StartRead(p, ino, off, bufs[issued%window])
		if err != nil {
			return nil, 0, cluster, err
		}
		q = append(q, pd)
	}
	for _, pd := range q {
		if err := retire(pd); err != nil {
			return nil, 0, cluster, err
		}
	}
	return samples, maxLat, cluster, nil
}

// dgRun executes the degraded workload on a fresh simulated cluster of
// the given width. killAt > 0 schedules server 0's NIC to die at that
// absolute virtual time; 0 runs fault-free (the baseline, whose
// makespan and worst latency calibrate the kill time and the reply
// deadline). timeout arms per-request deadlines; 0 leaves them off.
func (c Config) dgRun(servers int, killAt, timeout sim.Time) (*dgResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	var (
		serverNodes []*hw.Node
		serverIDs   []hw.NodeID
		serverFS    []*memfs.FS
	)
	for j := 0; j < servers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverNodes = append(serverNodes, n)
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		serverFS = append(serverFS, fs)
		if _, err := rfsrv.NewServer(n, fs).ServeMX(mx.Attach(n), 1, 4); err != nil {
			return nil, err
		}
	}
	if killAt > 0 {
		serverNodes[0].NIC.KillAfter(killAt)
	}
	res := &dgResult{}
	clusters := make([]*rfsrv.Cluster, msClients)
	var failure error
	done := 0
	env.Spawn("seed", func(p *sim.Proc) {
		inos, err := dgSeed(p, serverFS, serverNodes, msClients)
		if err != nil {
			failure = err
			return
		}
		res.started = p.Now()
		for i := 0; i < msClients; i++ {
			i := i
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				samples, maxLat, cluster, err := dgClient(p, node, serverIDs, inos[i], timeout)
				clusters[i] = cluster
				if err != nil {
					if failure == nil {
						failure = err
					}
					return
				}
				if maxLat > res.maxLat {
					res.maxLat = maxLat
				}
				res.samples = append(res.samples, samples...)
				if p.Now() > res.finished {
					res.finished = p.Now()
				}
				done++
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return nil, failure
	}
	if done != msClients {
		return nil, fmt.Errorf("figures: %d/%d degraded clients finished (s=%d)", done, msClients, servers)
	}
	for _, cluster := range clusters {
		if cluster != nil {
			res.failovers += cluster.Failovers.N
			res.excluded += cluster.Excluded.N
		}
	}
	return res, nil
}

// dgKillTime places the kill inside a fault-free run's measurement
// window.
func dgKillTime(base *dgResult) sim.Time {
	return base.started + (base.finished-base.started)*dgKillNum/dgKillDen
}

// Degraded runs the whole suite and returns its table: per server
// count, fault-free aggregate throughput, throughput before and after
// a mid-run kill of server 0 (R=2, per-request timeouts armed), and
// the failover accounting.
func (c Config) Degraded() (*Table, error) {
	rows := make([][]string, 0, len(dgServersAxis))
	for _, n := range dgServersAxis {
		base, err := c.dgRun(n, 0, 0)
		if err != nil {
			return nil, err
		}
		killAt, timeout := dgKillTime(base), dgTimeout(base)
		faulted, err := c.dgRun(n, killAt, timeout)
		if err != nil {
			return nil, err
		}
		pre, post := faulted.mbpsSplit(killAt, killAt+timeout)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", dgReplicas),
			fmt.Sprintf("%.1f", base.mbpsTotal()),
			fmt.Sprintf("%.1f", pre),
			fmt.Sprintf("%.1f", float64(timeout.Microseconds())/1000),
			fmt.Sprintf("%.1f", post),
			fmt.Sprintf("%.2f", post/pre),
			fmt.Sprintf("%d", faulted.failovers),
			fmt.Sprintf("%d", faulted.excluded),
		})
	}
	return &Table{
		ID:    "degraded",
		Title: fmt.Sprintf("Aggregate throughput across a mid-run server kill (%d clients, window %d, R=%d, deadline 2.5x max fault-free latency)", msClients, dgWindow, dgReplicas),
		Columns: []string{"servers", "R", "fault-free MB/s", "pre-kill MB/s",
			"settle ms", "post-settle MB/s", "post/pre", "failovers", "excluded"},
		Rows: rows,
		Expected: "beyond the paper (its platform has no fault model): post-kill " +
			"throughput should settle near the (N-1)/N capacity fraction, with the " +
			"victim's read load folded onto its replicas — not collapse to zero, " +
			"and not hang",
	}, nil
}
