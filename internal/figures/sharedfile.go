package figures

// This file holds the shared-file coherence suite: the first
// multi-writer workload in the repository, and the scenario the
// size-coherence protocol (DESIGN.md §9) exists for. The multiserver
// suite striped one file per client; here K writer clients append,
// interleaved, to ONE striped file while K reader clients tail it —
// every writer's synchronous Write runs the cluster's validated size
// cache and OpSetSize reconciliation, and every reader's homed getattr
// revalidates against the size authority, so the measured throughput
// includes the full cost of keeping every server's local size (and
// with it homed getattr and striped-read EOF clipping) coherent.
//
// The interesting numbers are aggregate throughput against the server
// count, read/write latency, and the coherence overhead itself:
// OpSetSize reconciliation RPCs per data write. The overhead is the
// protocol's honest price — each size-extending write fans a grow-only
// OpSetSize to the servers its data did not touch — and it is what a
// single-writer workload never pays (those runs skip reconciliation
// whenever their validated cache already covers the write, which is
// why every single-writer figure in this file's siblings is
// bit-identical to the pre-coherence code).
//
// Every run finishes with an in-simulation coherence audit: the file's
// final size must be agreed by every server's local metadata and by a
// homed getattr through a fresh client, or the run fails — the harness
// half of rfsrv's TestClusterCrossClientExtend acceptance.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/netpipe"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// sfWindow is the per-server session window (the scalability
	// suite's best window).
	sfWindow = 8
	// sfWriters and sfReaders are the client counts on each side of
	// the shared file.
	sfWriters = 4
	sfReaders = 4
	// sfChunk is the application write/read unit: one stripe, so every
	// chunk maps to exactly one server.
	sfChunk = rfsrv.DefaultStripeSize
	// sfChunksPerWriter is each writer's share of the file in the full
	// suite: 4 writers x 16 chunks x 64 KB = 4 MB shared file.
	sfChunksPerWriter = 16
	// sfPoll is how long a reader sleeps when it has caught up with
	// the writers before re-checking the file size.
	sfPoll = sim.Time(20 * time.Microsecond)
)

// sfServersAxis is the swept server count.
var sfServersAxis = []int{1, 4, 8}

// sfResult carries one run's aggregate metrics.
type sfResult struct {
	mbps         float64
	writeP50     sim.Time
	writeP99     sim.Time
	readP50      sim.Time
	readP99      sim.Time
	setSizeRPCs  int
	writeChunks  int
	coherencePct float64 // OpSetSize RPCs per 100 data writes
}

// sfRun executes the shared-file workload over the given server count:
// sfWriters clients interleave synchronous chunk appends to one
// striped file while sfReaders clients tail it to the end, each client
// on its own node with its own cluster. chunksPerWriter scales the run
// (the short-mode smoke uses a small value). With batched set, the
// writers defer their reconciliation through the coalescing publish
// queue (Cluster.SetSizePublishBatch) and drain it before finishing —
// the amortized mode DESIGN.md §11 adds. The run fails if the final
// size is not coherent on every server and through a homed getattr.
func (c Config) sfRun(servers, chunksPerWriter int, batched bool) (sfResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)

	var (
		serverNodes []*hw.Node
		serverIDs   []hw.NodeID
		serverFS    []*memfs.FS
	)
	for j := 0; j < servers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverNodes = append(serverNodes, n)
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		serverFS = append(serverFS, fs)
		if _, err := rfsrv.NewServer(n, fs).ServeMX(mx.Attach(n), 1, 4); err != nil {
			return sfResult{}, err
		}
	}

	totalChunks := sfWriters * chunksPerWriter
	total := int64(totalChunks) * sfChunk
	var (
		failure      error
		ino          kernel.InodeID
		started      sim.Time
		finished     sim.Time
		done         int
		writeSamples []sim.Time
		readSamples  []sim.Time
		setSizeRPCs  int
		bytesMoved   int
		auditSize    int64
	)
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
	}
	env.Spawn("seed", func(p *sim.Proc) {
		// Replicate the empty file onto every server the way a cluster
		// client's fanned-out create would (same creation order → same
		// inode and a zero size epoch everywhere).
		for j, fs := range serverFS {
			attr, err := fs.Create(p, fs.Root(), "shared")
			if err != nil {
				fail(err)
				return
			}
			if j == 0 {
				ino = attr.Ino
			} else if attr.Ino != ino {
				fail(fmt.Errorf("figures: shared-file seed inode divergence"))
				return
			}
		}
		started = p.Now()
		clientDone := func(p *sim.Proc) {
			if p.Now() > finished {
				finished = p.Now()
			}
			done++
			if done == sfWriters+sfReaders {
				c.sfAudit(p, cl, serverIDs, serverFS, ino, total, &auditSize, fail)
			}
		}
		for w := 0; w < sfWriters; w++ {
			w := w
			node := cl.AddNode(fmt.Sprintf("writer%d", w))
			env.Spawn(fmt.Sprintf("wr%d", w), func(p *sim.Proc) {
				lat, moved, rpcs, err := sfWriter(p, node, serverIDs, ino, w, chunksPerWriter, batched)
				if err != nil {
					fail(err)
					return
				}
				writeSamples = append(writeSamples, lat...)
				bytesMoved += moved
				setSizeRPCs += rpcs
				clientDone(p)
			})
		}
		for r := 0; r < sfReaders; r++ {
			r := r
			node := cl.AddNode(fmt.Sprintf("reader%d", r))
			env.Spawn(fmt.Sprintf("rd%d", r), func(p *sim.Proc) {
				lat, moved, err := sfReader(p, node, serverIDs, ino, total)
				if err != nil {
					fail(err)
					return
				}
				readSamples = append(readSamples, lat...)
				bytesMoved += moved
				clientDone(p)
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return sfResult{}, failure
	}
	if done != sfWriters+sfReaders {
		return sfResult{}, fmt.Errorf("figures: %d/%d shared-file clients finished (s=%d)", done, sfWriters+sfReaders, servers)
	}
	if auditSize != total {
		return sfResult{}, fmt.Errorf("figures: shared-file audit never ran")
	}
	w := summarize(writeSamples, 0, 0)
	r := summarize(readSamples, 0, 0)
	res := sfResult{
		mbps:     mbps(bytesMoved, finished-started),
		writeP50: w.p50, writeP99: w.p99,
		readP50: r.p50, readP99: r.p99,
		setSizeRPCs: setSizeRPCs,
		writeChunks: totalChunks,
	}
	res.coherencePct = 100 * float64(setSizeRPCs) / float64(totalChunks)
	return res, nil
}

// sfAudit is the end-of-run coherence check, run once on the last
// client's process: every server's local size and a homed getattr
// through a fresh cluster client must agree on the file's final size.
func (c Config) sfAudit(p *sim.Proc, cl *hw.Cluster, servers []hw.NodeID,
	serverFS []*memfs.FS, ino kernel.InodeID, total int64,
	auditSize *int64, fail func(error)) {
	for j, fs := range serverFS {
		a, err := fs.Getattr(p, ino)
		if err != nil {
			fail(err)
			return
		}
		if a.Size != total {
			fail(fmt.Errorf("figures: shared-file incoherent: server %d local size %d, want %d", j, a.Size, total))
			return
		}
	}
	node := cl.AddNode("audit")
	cluster, err := msCluster(p, node, servers, sfWindow)
	if err != nil {
		fail(err)
		return
	}
	resp, err := cluster.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
	if err != nil || resp.Attr.Size != total {
		fail(fmt.Errorf("figures: shared-file homed getattr = %d (%v), want %d", resp.Attr.Size, err, total))
		return
	}
	*auditSize = total
}

// sfWriter appends writer w's interleaved chunks (w, w+K, w+2K, ...)
// to the shared file through its own cluster, synchronously, and
// returns chunk latencies, bytes written, and the OpSetSize RPCs its
// cluster issued. Per-write mode pays the reconciliation fan on every
// size-extending write; batched mode coalesces the ends through the
// publish queue — one combined batch round per window drain — and
// drains the queue before the writer finishes, so the end-of-run
// audit still sees every server agreeing on the final size.
func sfWriter(p *sim.Proc, node *hw.Node, servers []hw.NodeID, ino kernel.InodeID, w, chunksPerWriter int, batched bool) ([]sim.Time, int, int, error) {
	cluster, err := msCluster(p, node, servers, sfWindow)
	if err != nil {
		return nil, 0, 0, err
	}
	if batched {
		if err := cluster.SetSizePublishBatch(rfsrv.DefaultSizePublishBatch); err != nil {
			return nil, 0, 0, err
		}
	}
	va, err := node.Kernel.Mmap(sfChunk, "sf-wbuf")
	if err != nil {
		return nil, 0, 0, err
	}
	vec := vecKernel(node.Kernel, va, sfChunk)
	var samples []sim.Time
	moved := 0
	totalChunks := sfWriters * chunksPerWriter
	for chunk := w; chunk < totalChunks; chunk += sfWriters {
		t0 := p.Now()
		resp, err := cluster.Write(p, ino, int64(chunk)*sfChunk, vec)
		if err != nil {
			return nil, 0, 0, err
		}
		if int(resp.N) != sfChunk {
			return nil, 0, 0, fmt.Errorf("figures: short shared-file write %d at chunk %d", resp.N, chunk)
		}
		samples = append(samples, p.Now()-t0)
		moved += sfChunk
	}
	if batched {
		if err := cluster.FlushSizes(p); err != nil {
			return nil, 0, 0, err
		}
	}
	return samples, moved, int(cluster.SetSizes.N), nil
}

// sfReader tails the shared file through its own cluster: a homed
// getattr (the size authority) bounds how far it may read, whole
// chunks stream through the window, and a reader that catches up with
// the writers sleeps briefly before re-checking. Chunks the writers
// have not reached yet inside the visible size read as holes — the
// reader measures coherence and transport cost, not content.
func sfReader(p *sim.Proc, node *hw.Node, servers []hw.NodeID, ino kernel.InodeID, total int64) ([]sim.Time, int, error) {
	cluster, err := msCluster(p, node, servers, sfWindow)
	if err != nil {
		return nil, 0, err
	}
	window := cluster.Window()
	bufs := make([]core.Vector, window)
	for j := range bufs {
		va, err := node.Kernel.Mmap(sfChunk, "sf-rbuf")
		if err != nil {
			return nil, 0, err
		}
		bufs[j] = vecKernel(node.Kernel, va, sfChunk)
	}
	var samples []sim.Time
	var q []rfsrv.PendingOp
	retire := func(pd rfsrv.PendingOp) error {
		if _, err := pd.Wait(p); err != nil {
			return err
		}
		samples = append(samples, p.Now()-pd.Issued())
		return nil
	}
	moved := 0
	var pos int64
	issued := 0
	for pos < total {
		resp, err := cluster.Meta(p, &rfsrv.Req{Op: rfsrv.OpGetattr, Ino: ino})
		if err != nil {
			return nil, 0, err
		}
		limit := resp.Attr.Size - resp.Attr.Size%sfChunk
		if limit > total {
			limit = total
		}
		if pos == limit {
			p.Sleep(sfPoll)
			continue
		}
		for ; pos < limit; pos += sfChunk {
			for len(q) > 0 && (len(q) == window || !cluster.CanStart(ino, pos, sfChunk)) {
				pd := q[0]
				q = q[1:]
				if err := retire(pd); err != nil {
					return nil, 0, err
				}
			}
			pd, err := cluster.StartRead(p, ino, pos, bufs[issued%window])
			if err != nil {
				return nil, 0, err
			}
			q = append(q, pd)
			issued++
			moved += sfChunk
		}
	}
	for _, pd := range q {
		if err := retire(pd); err != nil {
			return nil, 0, err
		}
	}
	return samples, moved, nil
}

// SharedFile runs the whole suite and returns three figures: aggregate
// throughput, read/write latency percentiles, and the coherence
// overhead (OpSetSize reconciliation RPCs per 100 data writes), each
// against the server count.
func (c Config) SharedFile() ([]*Figure, error) {
	var bw, bwBatched, coh, cohBatched netpipe.Series
	bw.Label, bwBatched.Label = "per-write", "batched publish"
	coh.Label, cohBatched.Label = "per-write", "batched publish"
	var wp50, wp99, rp50, rp99 netpipe.Series
	wp50.Label, wp99.Label = "write p50", "write p99"
	rp50.Label, rp99.Label = "read p50", "read p99"
	for _, s := range sfServersAxis {
		r, err := c.sfRun(s, sfChunksPerWriter, false)
		if err != nil {
			return nil, err
		}
		bw.Points = append(bw.Points, netpipe.Point{Size: s, MBps: r.mbps})
		coh.Points = append(coh.Points, netpipe.Point{Size: s, MBps: r.coherencePct})
		wp50.Points = append(wp50.Points, netpipe.Point{Size: s, OneWay: r.writeP50})
		wp99.Points = append(wp99.Points, netpipe.Point{Size: s, OneWay: r.writeP99})
		rp50.Points = append(rp50.Points, netpipe.Point{Size: s, OneWay: r.readP50})
		rp99.Points = append(rp99.Points, netpipe.Point{Size: s, OneWay: r.readP99})
		b, err := c.sfRun(s, sfChunksPerWriter, true)
		if err != nil {
			return nil, err
		}
		bwBatched.Points = append(bwBatched.Points, netpipe.Point{Size: s, MBps: b.mbps})
		cohBatched.Points = append(cohBatched.Points, netpipe.Point{Size: s, MBps: b.coherencePct})
	}
	bwFig := &Figure{
		ID: "sharedfile",
		Title: fmt.Sprintf("Shared-file multi-writer throughput vs server count (%d writers + %d readers, window %d, %d KB chunks)",
			sfWriters, sfReaders, sfWindow, sfChunk/1024),
		XLabel: "servers (one file striped across)", YLabel: "aggregate throughput (MB/s)",
		Series: []netpipe.Series{bw, bwBatched},
		Expected: "beyond the paper: its per-mount attribute caches had no cross-client " +
			"invalidation, so a shared-file workload could not be served coherently at " +
			"all; with the size-epoch protocol the workload runs coherent and still " +
			"scales with the server count, and batched publishes recover the fan's cost",
	}
	latFig := &Figure{
		ID:     "sharedfile-lat",
		Title:  "Shared-file request latency vs server count",
		XLabel: "servers (one file striped across)", YLabel: "latency p50/p99 (µs)",
		Series: []netpipe.Series{wp50, wp99, rp50, rp99},
		Expected: "each write pays the OpSetSize reconciliation fan, yet latency still " +
			"falls with the server count: four writers contending for one link queue " +
			"far longer than the widened cluster's fan costs",
	}
	cohFig := &Figure{
		ID:     "sharedfile-coh",
		Title:  "Size-coherence overhead vs server count",
		XLabel: "servers (one file striped across)", YLabel: "OpSetSize RPCs per 100 data writes",
		Series: []netpipe.Series{coh, cohBatched},
		Unit:   "RPCs",
		Expected: "per-write reconciliation approaches (N-1) RPCs per extending write as " +
			"the cluster widens and vanishes on one server; the batched publish queue " +
			"coalesces a window of ends into one combined round, dropping the amortized " +
			"cost below one OpSetSize per write at every width",
	}
	return []*Figure{bwFig, latFig, cohFig}, nil
}
