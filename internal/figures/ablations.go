package figures

// This file holds the ablations beyond the paper's figures: §3.3
// request combining (AblationCombining) and the GM physical-address
// extension (AblationPhysicalAPI).
import (
	"fmt"

	"repro/internal/netpipe"
)

// This file holds the ablation experiments DESIGN.md calls out: they
// quantify individual design decisions of the paper beyond its own
// figures.

// AblationCombining measures buffered ORFS/MX throughput as the
// buffered-read combining factor grows: the paper's §3.3 prediction
// that Linux 2.6-style request combining (enabled by vectorial
// primitives) lifts the buffered-access ceiling toward direct access.
func (c Config) AblationCombining() (*Figure, error) {
	sizes := []int{65536}
	var series []netpipe.Series
	for _, combine := range []int{1, 2, 4, 8, 16, 32} {
		pts, err := c.fileAccessOpt(faOpts{tr: fsMX, combine: combine}, sizes)
		if err != nil {
			return nil, err
		}
		series = append(series, netpipe.Series{
			Label:  fmt.Sprintf("combine=%d pages", combine),
			Points: pts,
		})
	}
	direct, err := c.fileAccess(fsMX, false, true, sizes)
	if err != nil {
		return nil, err
	}
	series = append(series, netpipe.Series{Label: "direct (reference)", Points: direct})
	return &Figure{
		ID:     "ablation-combining",
		Title:  "Request combining lifts buffered access toward direct (paper §3.3 prediction)",
		XLabel: "request size (bytes)", YLabel: "throughput (MB/s)",
		Series: series,
		Expected: "page-at-a-time (combine=1) is the paper's measured ceiling; " +
			"combining recovers most of the gap to direct access",
	}, nil
}

// AblationPhysicalAPI measures buffered ORFS/GM with and without the
// paper's §3.3 physical-address primitives: the stock-GM configuration
// must bounce page-cache data through a registered staging buffer.
func (c Config) AblationPhysicalAPI() (*Figure, error) {
	sizes := []int{4096, 16384, 65536, 262144}
	withPhys, err := c.fileAccess(fsGM, false, false, sizes)
	if err != nil {
		return nil, err
	}
	without, err := c.fileAccessOpt(faOpts{tr: fsGM, combine: 1, noPhys: true}, sizes)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "ablation-physapi",
		Title:  "What the GM physical-address extension buys (buffered ORFS/GM)",
		XLabel: "request size (bytes)", YLabel: "throughput (MB/s)",
		Series: []netpipe.Series{
			{Label: "with physical API (paper's patch)", Points: withPhys},
			{Label: "stock GM (registered staging + copy)", Points: without},
		},
		Expected: "the paper built the physical API because stock GM forces an extra " +
			"registered-bounce copy per page; the patched path is visibly faster",
	}, nil
}
