package figures

// Tests for the degraded-operation suite: the PR's acceptance bar —
// aggregate throughput survives a mid-run server kill at N >= 3, R=2 —
// plus the fault-free replication sanity check.

import "testing"

// TestDegradedFailover kills one of N servers mid-run and requires the
// workload to finish with the victim excluded, reads failed over, and
// post-settle aggregate throughput within a sane fraction of the
// pre-kill rate (the surviving N-1 servers absorb the victim's load).
func TestDegradedFailover(t *testing.T) {
	servers := 4
	if testing.Short() {
		servers = 3
	}
	c := DefaultConfig()
	base, err := c.dgRun(servers, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	killAt, timeout := dgKillTime(base), dgTimeout(base)
	faulted, err := c.dgRun(servers, killAt, timeout)
	if err != nil {
		t.Fatalf("degraded run with kill at %v: %v", killAt, err)
	}
	if faulted.excluded < int64(msClients) {
		t.Errorf("only %d exclusions recorded; every client (%d) should have excluded the victim", faulted.excluded, msClients)
	}
	if faulted.failovers == 0 {
		t.Error("no failovers recorded across a mid-run kill")
	}
	pre, post := faulted.mbpsSplit(killAt, killAt+timeout)
	if post < pre*0.3 {
		t.Errorf("post-settle throughput %.1f MB/s < 30%% of pre-kill %.1f MB/s", post, pre)
	}
	if post <= 0 {
		t.Errorf("post-settle throughput %.1f MB/s: cluster did not keep serving", post)
	}
	t.Logf("servers=%d R=%d: fault-free %.1f MB/s, pre-kill %.1f, settle %v, post-settle %.1f (%.2fx), %d failovers, %d exclusions",
		servers, dgReplicas, base.mbpsTotal(), pre, timeout, post, post/pre, faulted.failovers, faulted.excluded)
}

// TestDegradedFaultFreeReplicationTax pins that merely running with
// R=2 and calibrated deadlines armed (no fault) completes correctly:
// reads come from primaries only, so no failovers, no exclusions — and
// in particular no false-positive timeouts under healthy queueing.
func TestDegradedFaultFreeReplicationTax(t *testing.T) {
	c := DefaultConfig()
	base, err := c.dgRun(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	timed, err := c.dgRun(3, 0, dgTimeout(base))
	if err != nil {
		t.Fatalf("fault-free run with deadlines armed: %v", err)
	}
	if timed.failovers != 0 || timed.excluded != 0 {
		t.Errorf("fault-free run recorded %d failovers, %d exclusions", timed.failovers, timed.excluded)
	}
	if timed.mbpsTotal() <= 0 {
		t.Error("fault-free degraded-harness run moved no data")
	}
}
