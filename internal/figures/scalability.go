package figures

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/nbd"
	"repro/internal/netpipe"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/vm"
)

// This file holds the sliding-window scalability suite: ablations
// beyond the paper's figures that measure what pipelining outstanding
// requests (impossible in the paper's synchronous prototypes) buys
// each in-kernel application. Three scenarios run a sequential-read
// workload against one file server:
//
//   - orfs-direct:   O_DIRECT chunk reads issued through the session
//     window (the application-level readahead pattern);
//   - orfs-buffered: page-cache reads with ORFS prefetching the
//     following pages through the window;
//   - nbd:           buffered block-device reads, the page cache
//     combining pages into a queue of pipelined block requests.
//
// Window = 1 is the paper's synchronous protocol; the sweep shows how
// aggregate throughput and tail latency respond to deeper windows and
// to more concurrent clients.

const (
	scalChunk      = 64 * 1024 // application request size
	scalFilePerCli = 2 << 20   // bytes each client reads
)

// scalSample is one request's (or application read's) latency.
type scalResult struct {
	mbps     float64
	p50, p99 sim.Time
}

// percentile returns the q-quantile (0..1) of the sorted samples.
func percentile(samples []sim.Time, q float64) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	i := int(q * float64(len(samples)-1))
	return samples[i]
}

func summarize(samples []sim.Time, totalBytes int, makespan sim.Time) scalResult {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return scalResult{
		mbps: mbps(totalBytes, makespan),
		p50:  percentile(samples, 0.50),
		p99:  percentile(samples, 0.99),
	}
}

// scalRun executes one scenario at one (clients, window) point on a
// fresh cluster and returns aggregate throughput plus per-request
// latency percentiles.
func (c Config) scalRun(scenario string, clients, window int) (scalResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := cl.AddNode("server")

	var serverFS *memfs.FS
	var nbdSrv *nbd.Server
	switch scenario {
	case "nbd":
		var err error
		nbdSrv, err = nbd.NewServer(server, clients*scalFilePerCli/nbd.BlockSize)
		if err != nil {
			return scalResult{}, err
		}
		if err := nbdSrv.ServeMX(mx.Attach(server), 1, 4); err != nil {
			return scalResult{}, err
		}
	default:
		serverFS = memfs.New("backing", server, 0)
		srv := rfsrv.NewServer(server, serverFS)
		if _, err := srv.ServeMX(mx.Attach(server), 1, 4); err != nil {
			return scalResult{}, err
		}
	}

	var (
		failure  error
		samples  []sim.Time
		started  sim.Time
		finished sim.Time
		done     int
	)
	env.Spawn("seed", func(p *sim.Proc) {
		// Seed one file per client (rfsrv scenarios). NBD blocks read
		// as zeros unwritten; seeding is not needed for throughput.
		inos := make([]kernel.InodeID, clients)
		if serverFS != nil {
			seedVA, err := server.Kernel.Mmap(scalFilePerCli, "seed")
			if err != nil {
				failure = err
				return
			}
			for i := 0; i < clients; i++ {
				attr, err := serverFS.Create(p, serverFS.Root(), fmt.Sprintf("f%d", i))
				if err != nil {
					failure = err
					return
				}
				if _, err := serverFS.WriteDirect(p, attr.Ino, 0, vecKernel(server.Kernel, seedVA, scalFilePerCli)); err != nil {
					failure = err
					return
				}
				inos[i] = attr.Ino
			}
		}
		started = p.Now()
		for i := 0; i < clients; i++ {
			i := i
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				lat, err := c.scalClient(p, scenario, node, server.ID, inos, i, window)
				if err != nil && failure == nil {
					failure = err
					return
				}
				samples = append(samples, lat...)
				if p.Now() > finished {
					finished = p.Now()
				}
				done++
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return scalResult{}, failure
	}
	if done != clients {
		return scalResult{}, fmt.Errorf("figures: %d/%d scalability clients finished (%s w=%d)", done, clients, scenario, window)
	}
	return summarize(samples, clients*scalFilePerCli, finished-started), nil
}

// scalClient runs one client's workload and returns its latency
// samples.
func (c Config) scalClient(p *sim.Proc, scenario string, node *hw.Node, server hw.NodeID, inos []kernel.InodeID, i, window int) ([]sim.Time, error) {
	ep := uint8(10 + i)
	switch scenario {
	case "orfs-direct":
		fc, err := rfsrv.NewMXClient(mx.Attach(node), ep, true, node.Kernel, server, 1)
		if err != nil {
			return nil, err
		}
		sess, err := rfsrv.NewSession(p, fc, window)
		if err != nil {
			return nil, err
		}
		return scalDirectReads(p, node, sess, inos[i])

	case "orfs-buffered":
		fc, err := rfsrv.NewMXClient(mx.Attach(node), ep, true, node.Kernel, server, 1)
		if err != nil {
			return nil, err
		}
		sess, err := rfsrv.NewSession(p, fc, window)
		if err != nil {
			return nil, err
		}
		osys := kernel.NewOS(node, 0)
		osys.Mount("/mnt", orfs.New("orfs", sess))
		return scalBufferedReads(p, node, osys, fmt.Sprintf("/mnt/f%d", i), 0)

	case "nbd":
		bc, err := nbd.NewClient(mx.Attach(node), ep, server, 1, len(inos)*scalFilePerCli/nbd.BlockSize)
		if err != nil {
			return nil, err
		}
		if err := bc.SetWindow(window); err != nil {
			return nil, err
		}
		osys := kernel.NewOS(node, 0)
		// The page cache combines up to `window` device pages per miss;
		// the device turns the combined range into a queue of block
		// requests pipelined through the client's window.
		osys.SetReadChunkPages(window)
		osys.Mount("/dev", nbd.NewDevice(bc))
		return scalBufferedReads(p, node, osys, "/dev/disk", int64(i)*scalFilePerCli)
	}
	return nil, fmt.Errorf("figures: unknown scalability scenario %q", scenario)
}

// scalDirectReads issues the file's chunks through the client's window
// (sliding, retired in order), one buffer per window slot so transfers
// never share staging. It takes any Async client — a Session drives
// one server, a Cluster stripes the same chunk stream across several
// (each 64 KB chunk is exactly one stripe, so chunks round-robin) —
// pacing issues with CanStart so a full per-server window retires the
// oldest chunk instead of blocking the pipeline.
func scalDirectReads(p *sim.Proc, node *hw.Node, sess rfsrv.Async, ino kernel.InodeID) ([]sim.Time, error) {
	window := sess.Window()
	bufs := make([]vm.VirtAddr, window)
	for j := range bufs {
		va, err := node.Kernel.Mmap(scalChunk, "scal-buf")
		if err != nil {
			return nil, err
		}
		bufs[j] = va
	}
	type inflight struct{ pd rfsrv.PendingOp }
	var q []inflight
	var samples []sim.Time
	reads := scalFilePerCli / scalChunk
	for issued := 0; issued < reads; issued++ {
		off := int64(issued) * scalChunk
		for len(q) > 0 && (len(q) == window || !sess.CanStart(ino, off, scalChunk)) {
			pd := q[0].pd
			q = q[1:]
			if _, err := pd.Wait(p); err != nil {
				return nil, err
			}
			samples = append(samples, p.Now()-pd.Issued())
		}
		pd, err := sess.StartRead(p, ino, off,
			core.Of(core.KernelSeg(node.Kernel, bufs[issued%window], scalChunk)))
		if err != nil {
			return nil, err
		}
		q = append(q, inflight{pd})
	}
	for _, f := range q {
		if _, err := f.pd.Wait(p); err != nil {
			return nil, err
		}
		samples = append(samples, p.Now()-f.pd.Issued())
	}
	return samples, nil
}

// scalBufferedReads reads the file sequentially through the VFS in
// application-sized chunks, timing each read call.
func scalBufferedReads(p *sim.Proc, node *hw.Node, osys *kernel.OS, path string, base int64) ([]sim.Time, error) {
	f, err := osys.Open(p, path, 0)
	if err != nil {
		return nil, err
	}
	as := node.NewUserSpace("app")
	va, err := as.Mmap(scalChunk, "buf")
	if err != nil {
		return nil, err
	}
	var samples []sim.Time
	for off := int64(0); off < scalFilePerCli; off += scalChunk {
		t0 := p.Now()
		n, err := f.ReadAt(p, as, va, scalChunk, base+off)
		if err != nil {
			return nil, err
		}
		if n != scalChunk {
			return nil, fmt.Errorf("figures: short buffered read %d at %d", n, base+off)
		}
		samples = append(samples, p.Now()-t0)
	}
	return samples, f.Close(p)
}

// scalWindows and scalClients are the sweep axes of the suite.
var (
	scalWindows     = []int{1, 2, 4, 8, 16, 32}
	scalClientsAxis = []int{1, 2, 4, 8}
)

// scalScenarios names the three workloads.
var scalScenarios = []string{"orfs-direct", "orfs-buffered", "nbd"}

// Scalability runs the whole suite and returns four figures: aggregate
// throughput and p50/p99 latency against the window size (one client),
// and the same pair against the client count (window 8).
func (c Config) Scalability() ([]*Figure, error) {
	sweep := func(id, title, xlabel string, xs []int, run func(x int, scen string) (scalResult, error)) (*Figure, *Figure, error) {
		var bwSeries, latSeries []netpipe.Series
		for _, scen := range scalScenarios {
			var bw netpipe.Series
			var p50s, p99s netpipe.Series
			bw.Label = scen
			p50s.Label, p99s.Label = scen+" p50", scen+" p99"
			for _, x := range xs {
				r, err := run(x, scen)
				if err != nil {
					return nil, nil, err
				}
				bw.Points = append(bw.Points, netpipe.Point{Size: x, MBps: r.mbps})
				p50s.Points = append(p50s.Points, netpipe.Point{Size: x, OneWay: r.p50})
				p99s.Points = append(p99s.Points, netpipe.Point{Size: x, OneWay: r.p99})
			}
			bwSeries = append(bwSeries, bw)
			latSeries = append(latSeries, p50s, p99s)
		}
		bwFig := &Figure{
			ID: id, Title: title,
			XLabel: xlabel, YLabel: "aggregate throughput (MB/s)",
			Series: bwSeries,
			Expected: "beyond the paper: its prototypes are synchronous (window = 1), " +
				"so these curves have no measured counterpart",
		}
		latFig := &Figure{
			ID: id + "-lat", Title: title + " — request latency",
			XLabel: xlabel, YLabel: "latency p50/p99 (µs)",
			Series: latSeries,
			Expected: "deeper windows trade per-request latency (queueing) for " +
				"aggregate throughput; p99 grows with the window",
		}
		return bwFig, latFig, nil
	}

	winBW, winLat, err := sweep("scal-window",
		"Aggregate sequential-read throughput vs window size (1 client)",
		"window (outstanding requests)", scalWindows,
		func(w int, scen string) (scalResult, error) { return c.scalRun(scen, 1, w) })
	if err != nil {
		return nil, err
	}
	cliBW, cliLat, err := sweep("scal-clients",
		"Aggregate sequential-read throughput vs concurrent clients (window 8)",
		"concurrent clients", scalClientsAxis,
		func(n int, scen string) (scalResult, error) { return c.scalRun(scen, n, 8) })
	if err != nil {
		return nil, err
	}
	return []*Figure{winBW, winLat, cliBW, cliLat}, nil
}
