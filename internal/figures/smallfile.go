package figures

// This file holds the small-file suite: the workload the per-file
// layout policy (DESIGN.md §10) exists for. The multiserver and
// shared-file suites move megabytes through 64 KB stripes; here K
// clients storm the cluster with files of 1–16 KB — create, one
// write, one read-back each — where striping is pure overhead: every
// file's single stripe lands on the stripe-0 owner (one server takes
// all data), and every size-extending write fans an OpSetSize
// reconciliation to the N−1 servers the data did not touch.
//
// The suite runs each server count twice: once with the default
// (policy-free, everything striped) client and once under the adaptive
// layout policy, which classifies these files whole-on-home — data on
// the file's metadata home, spread across servers by the inode hash,
// with NO reconciliation fan (the home is the size authority, see
// Cluster.setSizeTo). The interesting numbers are aggregate small-file
// ops/s against the server count for both policies, and the
// reconciliation RPCs each policy paid per data write.
//
// Every adaptive run finishes with an in-simulation audit: the
// whole-on-home clients must have issued ZERO OpSetSize
// reconciliation requests, or the run fails — small-file extends
// riding the reconciliation fan would mean the layout machinery
// silently degraded to striping's coherence cost.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/netpipe"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// sfcClients is the storming client count (enough concurrency that
	// the stripe-0 owner becomes the striped policy's bottleneck).
	sfcClients = 4
	// sfcFilesPerCli is how many files each client creates, writes and
	// reads back (a multiple of len(sfcSizes) so the size mix is even).
	sfcFilesPerCli = 40
	// sfcOpsPerFile: create + write + read-back.
	sfcOpsPerFile = 3
)

// sfcServersAxis is the swept server count.
var sfcServersAxis = []int{1, 4, 8}

// sfcSizes is the file-size mix, cycled per file: all well under
// PromoteThreshold, so the adaptive policy keeps every file
// whole-on-home.
var sfcSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}

// sfcPolicies names the two client configurations.
var sfcPolicies = []string{"striped", "whole-on-home"}

// sfcResult is one (policy, servers) point.
type sfcResult struct {
	opsPerSec float64
	// setSizePerWrite is the OpSetSize reconciliation RPCs issued per
	// data write, summed over clients — striping's coherence fan
	// (≈ N−1 on fresh files), identically zero for whole-on-home.
	setSizePerWrite float64
}

// sfcRun executes the storm at one (adaptive?, servers) point on a
// fresh simulated cluster. Files are created through each client's own
// cluster (so create hints classify them) but serialized across
// clients by the setup process: concurrent creates could fan to the
// servers in different interleavings and diverge the replicated
// namespace's inode assignment. The write/read storm then runs fully
// concurrently — that is where the two policies differ.
func (c Config) sfcRun(adaptive bool, servers int) (sfcResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)

	var serverIDs []hw.NodeID
	for j := 0; j < servers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		if _, err := rfsrv.NewServer(n, fs).ServeMX(mx.Attach(n), 1, 4); err != nil {
			return sfcResult{}, err
		}
	}

	var (
		failure  error
		started  sim.Time
		finished sim.Time
		done     int
		setSizes int64
	)
	env.Spawn("setup", func(p *sim.Proc) {
		started = p.Now()
		clusters := make([]*rfsrv.Cluster, sfcClients)
		inos := make([][]kernel.InodeID, sfcClients)
		for i := 0; i < sfcClients; i++ {
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			cluster, err := msCluster(p, node, serverIDs, msWindow)
			if err != nil {
				failure = err
				return
			}
			if adaptive {
				if err := cluster.SetLayoutPolicy(rfsrv.LayoutPolicy{Adaptive: true}); err != nil {
					failure = err
					return
				}
			}
			clusters[i] = cluster
			for f := 0; f < sfcFilesPerCli; f++ {
				resp, err := cluster.Meta(p, &rfsrv.Req{
					Op: rfsrv.OpCreate, Ino: 0, Name: fmt.Sprintf("c%d-f%d", i, f),
				})
				if err != nil {
					failure = err
					return
				}
				inos[i] = append(inos[i], resp.Attr.Ino)
			}
		}
		for i := 0; i < sfcClients; i++ {
			i := i
			env.Spawn(fmt.Sprintf("storm%d", i), func(p *sim.Proc) {
				if err := sfcStorm(p, clusters[i], inos[i]); err != nil {
					if failure == nil {
						failure = err
					}
					return
				}
				if p.Now() > finished {
					finished = p.Now()
				}
				setSizes += clusters[i].SetSizes.N
				done++
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return sfcResult{}, failure
	}
	if done != sfcClients {
		return sfcResult{}, fmt.Errorf("figures: %d/%d smallfile clients finished (adaptive=%v s=%d)", done, sfcClients, adaptive, servers)
	}
	if adaptive && setSizes != 0 {
		return sfcResult{}, fmt.Errorf("figures: whole-on-home storm issued %d OpSetSize reconciliations, want 0 (s=%d)", setSizes, servers)
	}
	ops := sfcClients * sfcFilesPerCli * sfcOpsPerFile
	writes := sfcClients * sfcFilesPerCli
	span := finished - started
	if span <= 0 {
		return sfcResult{}, fmt.Errorf("figures: smallfile storm took no time")
	}
	return sfcResult{
		opsPerSec:       float64(ops) / span.Seconds(),
		setSizePerWrite: float64(setSizes) / float64(writes),
	}, nil
}

// sfcStorm writes then reads back every file of one client: the
// concurrent half of the workload (creates were serialized by setup).
func sfcStorm(p *sim.Proc, cluster *rfsrv.Cluster, inos []kernel.InodeID) error {
	node := cluster.Node()
	buf, err := node.Kernel.Mmap(sfcSizes[len(sfcSizes)-1], "smallfile-buf")
	if err != nil {
		return err
	}
	for f, ino := range inos {
		size := sfcSizes[f%len(sfcSizes)]
		vec := core.Of(core.KernelSeg(node.Kernel, buf, size))
		if _, err := cluster.Write(p, ino, 0, vec); err != nil {
			return err
		}
		resp, err := cluster.Read(p, ino, 0, vec)
		if err != nil {
			return err
		}
		if int(resp.N) != size {
			return fmt.Errorf("figures: smallfile read-back got %d bytes, want %d", resp.N, size)
		}
	}
	return nil
}

// SmallFile runs the whole suite and returns two figures: aggregate
// small-file operation throughput and the OpSetSize reconciliation
// fan per write, both against the server count for both policies.
func (c Config) SmallFile() ([]*Figure, error) {
	var opsSeries, fanSeries []netpipe.Series
	for _, pol := range sfcPolicies {
		var ops, fan netpipe.Series
		ops.Label, fan.Label = pol, pol
		for _, s := range sfcServersAxis {
			r, err := c.sfcRun(pol == "whole-on-home", s)
			if err != nil {
				return nil, err
			}
			ops.Points = append(ops.Points, netpipe.Point{Size: s, MBps: r.opsPerSec})
			fan.Points = append(fan.Points, netpipe.Point{Size: s, MBps: r.setSizePerWrite})
		}
		opsSeries = append(opsSeries, ops)
		fanSeries = append(fanSeries, fan)
	}
	opsFig := &Figure{
		ID: "smallfile",
		Title: fmt.Sprintf("Small-file storm ops/s vs server count (%d clients, %d files each, %d–%d KB)",
			sfcClients, sfcFilesPerCli, sfcSizes[0]/1024, sfcSizes[len(sfcSizes)-1]/1024),
		XLabel: "servers", YLabel: "aggregate create+write+read ops/s",
		Series: opsSeries,
		Unit:   "ops/s",
		Expected: "beyond the paper: striping gains nothing below one stripe — the adaptive " +
			"whole-on-home layout spreads small files across servers by inode hash and skips " +
			"the size-reconciliation fan, so it should pull ahead as servers are added while " +
			"the striped policy stays pinned to the stripe-0 owner",
	}
	fanFig := &Figure{
		ID:     "smallfile-setsize",
		Title:  "OpSetSize reconciliation RPCs per small-file write",
		XLabel: "servers", YLabel: "reconciliations per write",
		Series: fanSeries,
		Unit:   "ops/write",
		Expected: "striped extends fan a grow-only OpSetSize to the N−1 servers the data " +
			"missed; whole-on-home extends pay exactly zero (the home is the size authority)",
	}
	return []*Figure{opsFig, fanFig}, nil
}
