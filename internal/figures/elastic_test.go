package figures

// Tests for the elastic-membership suite: the PR's acceptance bar —
// kill -> heal -> journaled-replay re-admission -> live Join N->N+1
// under load, with post-expansion throughput >= 0.9x pre-kill.

import "testing"

// TestElasticLifecycle runs the full lifecycle and requires: every
// exclusion re-admitted by journal replay (no refusals, no spills),
// dirty bytes actually replayed to the healed victim, the Join's
// stripe migration moved data, the view cut over to N+1 members at a
// fresh epoch, and the expanded cluster serving at >= 0.9x the
// pre-kill rate.
func TestElasticLifecycle(t *testing.T) {
	c := DefaultConfig()
	base, err := c.elRun(0)
	if err != nil {
		t.Fatal(err)
	}
	timeout := base.maxLat * 5 / 2
	res, err := c.elRun(timeout)
	if err != nil {
		t.Fatalf("elastic run with deadline %v: %v", timeout, err)
	}
	if res.failovers == 0 {
		t.Error("no failovers recorded across the victim's dark window")
	}
	if res.reinstates == 0 {
		t.Error("no reinstates recorded; the healed victim was never re-admitted")
	}
	if res.refusals != 0 || res.spills != 0 {
		t.Errorf("%d refusals, %d spills; every re-admission should replay its journal in-bounds", res.refusals, res.spills)
	}
	if res.resyncBytes == 0 {
		t.Error("no resync bytes replayed; the overwrites missed during exclusion should be journaled dirty data")
	}
	if res.migratedBytes == 0 {
		t.Error("join migrated no bytes; the joiner owns stripes under the new placement")
	}
	if res.epoch == 0 {
		t.Error("membership epoch did not advance across the join")
	}
	if len(res.members) != elActive+1 {
		t.Errorf("members = %v after join, want %d slots", res.members, elActive+1)
	}
	pre, degraded, post := elPhases(res, timeout)
	if degraded <= 0 {
		t.Error("degraded phase moved no data; the surviving members should keep serving")
	}
	if post < pre*0.9 {
		t.Errorf("post-expansion throughput %.1f MB/s < 0.9x pre-kill %.1f MB/s", post, pre)
	}
	t.Logf("pre %.1f MB/s, degraded %.1f (%.2fx), post-expansion %.1f (%.2fx); %d reinstates, %d B replayed, %d KB migrated, epoch %d members %v",
		pre, degraded, degraded/pre, post, post/pre,
		res.reinstates, res.resyncBytes, res.migratedBytes/1024, res.epoch, res.members)
}
