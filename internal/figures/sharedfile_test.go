package figures

// Tests for the shared-file coherence suite: the multi-writer
// acceptance bar (the run's built-in audit fails unless every server
// and a homed getattr agree on the final size) and the coherence
// overhead shape.

import "testing"

// TestSharedFileCoherent is the harness half of the cross-client
// coherence acceptance: K writers interleaving appends to one striped
// file must leave every server's local size and a homed getattr
// agreeing on the file's end — sfRun fails on its built-in audit
// otherwise. Short mode runs a small file over 1 and 2 servers; the
// full run adds the suite's widest point.
func TestSharedFileCoherent(t *testing.T) {
	c := DefaultConfig()
	chunks := 4
	axis := []int{1, 2}
	if !testing.Short() {
		chunks = sfChunksPerWriter
		axis = append(axis, 8)
	}
	for _, s := range axis {
		r, err := c.sfRun(s, chunks)
		if err != nil {
			t.Fatalf("%d servers: %v", s, err)
		}
		t.Logf("%d servers: %.1f MB/s, %d OpSetSize RPCs for %d writes (%.0f%%)",
			s, r.mbps, r.setSizeRPCs, r.writeChunks, r.coherencePct)
	}
}

// TestSharedFileCoherenceOverheadShape pins the protocol's cost
// profile: on one server the reconciliation fan has nobody to reach
// (zero OpSetSize RPCs), and on N servers it issues at most N-1 per
// size-extending write.
func TestSharedFileCoherenceOverheadShape(t *testing.T) {
	c := DefaultConfig()
	one, err := c.sfRun(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if one.setSizeRPCs != 0 {
		t.Errorf("1 server issued %d OpSetSize RPCs, want 0", one.setSizeRPCs)
	}
	two, err := c.sfRun(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if two.setSizeRPCs == 0 {
		t.Error("2 servers issued no OpSetSize RPCs; multi-writer appends must reconcile")
	}
	if max := two.writeChunks * 1 * 4; two.setSizeRPCs > max {
		t.Errorf("2 servers issued %d OpSetSize RPCs, want <= %d (N-1 per write with bounded stale retries)", two.setSizeRPCs, max)
	}
}
