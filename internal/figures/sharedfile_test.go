package figures

// Tests for the shared-file coherence suite: the multi-writer
// acceptance bar (the run's built-in audit fails unless every server
// and a homed getattr agree on the final size) and the coherence
// overhead shape.

import "testing"

// TestSharedFileCoherent is the harness half of the cross-client
// coherence acceptance: K writers interleaving appends to one striped
// file must leave every server's local size and a homed getattr
// agreeing on the file's end — sfRun fails on its built-in audit
// otherwise. Short mode runs a small file over 1 and 2 servers; the
// full run adds the suite's widest point.
func TestSharedFileCoherent(t *testing.T) {
	c := DefaultConfig()
	chunks := 4
	axis := []int{1, 2}
	if !testing.Short() {
		chunks = sfChunksPerWriter
		axis = append(axis, 8)
	}
	for _, s := range axis {
		r, err := c.sfRun(s, chunks, false)
		if err != nil {
			t.Fatalf("%d servers: %v", s, err)
		}
		t.Logf("%d servers: %.1f MB/s, %d OpSetSize RPCs for %d writes (%.0f%%)",
			s, r.mbps, r.setSizeRPCs, r.writeChunks, r.coherencePct)
	}
}

// TestSharedFileBatchedPublishAmortizes is the batched-mode acceptance
// bar: writers draining their size publishes through the coalescing
// queue must end the run just as coherent (sfRun's built-in audit) at
// an amortized cost below one OpSetSize per extending write — against
// the N-1 the per-write fan pays. Short mode checks 4 servers only.
func TestSharedFileBatchedPublishAmortizes(t *testing.T) {
	c := DefaultConfig()
	axis := []int{4, 8}
	if testing.Short() {
		axis = []int{4}
	}
	for _, s := range axis {
		perWrite, err := c.sfRun(s, sfChunksPerWriter, false)
		if err != nil {
			t.Fatalf("%d servers per-write: %v", s, err)
		}
		batched, err := c.sfRun(s, sfChunksPerWriter, true)
		if err != nil {
			t.Fatalf("%d servers batched: %v", s, err)
		}
		perOp := float64(batched.setSizeRPCs) / float64(batched.writeChunks)
		if perOp >= 1 {
			t.Errorf("%d servers: batched publishes cost %.2f OpSetSize/write, want < 1", s, perOp)
		}
		if batched.setSizeRPCs == 0 {
			t.Errorf("%d servers: batched run issued no publishes — the queue never drained through the wire", s)
		}
		if batched.setSizeRPCs >= perWrite.setSizeRPCs {
			t.Errorf("%d servers: batched %d RPCs, want < per-write %d", s, batched.setSizeRPCs, perWrite.setSizeRPCs)
		}
		t.Logf("%d servers: per-write %d RPCs (%.2f/write), batched %d (%.2f/write)",
			s, perWrite.setSizeRPCs, float64(perWrite.setSizeRPCs)/float64(perWrite.writeChunks),
			batched.setSizeRPCs, perOp)
	}
}

// TestSharedFileCoherenceOverheadShape pins the protocol's cost
// profile: on one server the reconciliation fan has nobody to reach
// (zero OpSetSize RPCs), and on N servers it issues at most N-1 per
// size-extending write.
func TestSharedFileCoherenceOverheadShape(t *testing.T) {
	c := DefaultConfig()
	one, err := c.sfRun(1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if one.setSizeRPCs != 0 {
		t.Errorf("1 server issued %d OpSetSize RPCs, want 0", one.setSizeRPCs)
	}
	two, err := c.sfRun(2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if two.setSizeRPCs == 0 {
		t.Error("2 servers issued no OpSetSize RPCs; multi-writer appends must reconcile")
	}
	if max := two.writeChunks * 1 * 4; two.setSizeRPCs > max {
		t.Errorf("2 servers issued %d OpSetSize RPCs, want <= %d (N-1 per write with bounded stale retries)", two.setSizeRPCs, max)
	}
}
