package figures

// This file holds the striped multi-server suite: the axis PR 2 could
// not move. Pipelining saturated ONE server's 250 MB/s link; here the
// same workloads stripe their data across 1..8 rfsrv (or NBD) servers
// through rfsrv.Cluster / nbd.NewStripedDevice, with enough concurrent
// clients that aggregate throughput is limited by server links, not by
// a single client NIC. Three scenarios, as in the scalability suite:
//
//   - orfs-direct:   64 KB O_DIRECT chunk reads through the striped
//     cluster's windows (one chunk = one stripe, chunks round-robin
//     across servers);
//   - orfs-buffered: page-cache reads with ORFS readahead prefetching
//     through the cluster's aggregate window;
//   - nbd:           buffered reads of a block-striped device, the
//     page cache combining enough pages per miss to span every server.
//
// Every point runs at the scalability suite's best window (8 per
// server) with a fixed client count, so the single moving variable is
// the server count. The one-server configuration is the cluster code
// path end to end, and is bit-identical to driving a plain Session
// (rfsrv.TestClusterOneServerMatchesSession guards the client layer,
// TestMultiServerOneServerMatchesScalability the whole harness).

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/nbd"
	"repro/internal/netpipe"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

const (
	// msWindow is the per-server window: the best window from the PR 2
	// scalability sweep (window 8 saturates one link).
	msWindow = 8
	// msStripe is the stripe width: one application chunk, so direct
	// reads map one-to-one onto stripes.
	msStripe = rfsrv.DefaultStripeSize
	// msClients is the fixed client count: enough client NICs that
	// 8 server links can in principle be kept busy (each link is
	// 250 MB/s on both sides).
	msClients = 8
)

// msServersAxis is the swept server count.
var msServersAxis = []int{1, 2, 4, 8}

// msScenarios names the three workloads.
var msScenarios = []string{"orfs-direct", "orfs-buffered", "nbd"}

// msSeedStriped replicates the namespace onto every server the way
// the cluster client would (same creation order everywhere → same
// inode numbers) and writes each file's stripes onto their owners —
// stripe k to servers (k mod N)..(k mod N)+R-1 at its global offset —
// then extends every server's copy to the full size: the on-disk
// layout a (replicated) cluster client's own writes would produce,
// seeded server-side so setup cost stays out of the measurement. One
// placement routine serves both the multiserver (R=1) and degraded
// (R=2) suites, so it cannot drift from rfsrv.Cluster's policy in
// just one of them.
func msSeedStriped(p *sim.Proc, serverFS []*memfs.FS, servers []*hw.Node, clients, filePerCli, replicas int) ([]kernel.InodeID, error) {
	inos := make([]kernel.InodeID, clients)
	stripes := filePerCli / msStripe
	n := len(serverFS)
	for j, fs := range serverFS {
		seedVA, err := servers[j].Kernel.Mmap(msStripe, "seed")
		if err != nil {
			return nil, err
		}
		for i := 0; i < clients; i++ {
			attr, err := fs.Create(p, fs.Root(), fmt.Sprintf("f%d", i))
			if err != nil {
				return nil, err
			}
			if j == 0 {
				inos[i] = attr.Ino
			} else if attr.Ino != inos[i] {
				return nil, fmt.Errorf("figures: seed inode divergence (%d vs %d)", attr.Ino, inos[i])
			}
			for k := 0; k < stripes; k++ {
				mine := false
				for r := 0; r < replicas; r++ {
					if (k%n+r)%n == j {
						mine = true
						break
					}
				}
				if !mine {
					continue
				}
				off := int64(k) * msStripe
				if _, err := fs.WriteDirect(p, attr.Ino, off, vecKernel(servers[j].Kernel, seedVA, msStripe)); err != nil {
					return nil, err
				}
			}
			if err := fs.Truncate(p, attr.Ino, int64(filePerCli)); err != nil {
				return nil, err
			}
		}
	}
	return inos, nil
}

// msSeedRfsrv is msSeedStriped at this suite's file size, without
// replication.
func msSeedRfsrv(p *sim.Proc, serverFS []*memfs.FS, servers []*hw.Node, clients int) ([]kernel.InodeID, error) {
	return msSeedStriped(p, serverFS, servers, clients, scalFilePerCli, 1)
}

// msClusterRep wires one client node to every server: one kernel-side
// MX fabric client per server on its own endpoint (reply deadline
// armed when timeout > 0), one session per server, assembled into a
// striped cluster with the given replication factor.
func msClusterRep(p *sim.Proc, node *hw.Node, servers []hw.NodeID, window, replicas int, timeout sim.Time) (*rfsrv.Cluster, error) {
	m := mx.Attach(node)
	sessions := make([]*rfsrv.Session, len(servers))
	for j, sid := range servers {
		fc, err := rfsrv.NewMXClient(m, uint8(10+j), true, node.Kernel, sid, 1)
		if err != nil {
			return nil, err
		}
		if timeout > 0 {
			fc.SetRequestTimeout(timeout)
		}
		if sessions[j], err = rfsrv.NewSession(p, fc, window); err != nil {
			return nil, err
		}
	}
	return rfsrv.NewReplicatedCluster(p, sessions, msStripe, replicas)
}

// msCluster is msClusterRep without replication or deadlines (the
// fault-free multiserver suite).
func msCluster(p *sim.Proc, node *hw.Node, servers []hw.NodeID, window int) (*rfsrv.Cluster, error) {
	return msClusterRep(p, node, servers, window, 1, 0)
}

// msRun executes one scenario at one (servers, clients) point on a
// fresh simulated cluster and returns aggregate throughput plus
// per-request latency percentiles.
func (c Config) msRun(scenario string, servers, clients int) (scalResult, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)

	var (
		serverNodes []*hw.Node
		serverIDs   []hw.NodeID
		serverFS    []*memfs.FS
	)
	for j := 0; j < servers; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverNodes = append(serverNodes, n)
		serverIDs = append(serverIDs, n.ID)
		switch scenario {
		case "nbd":
			srv, err := nbd.NewServer(n, clients*scalFilePerCli/nbd.BlockSize)
			if err != nil {
				return scalResult{}, err
			}
			if err := srv.ServeMX(mx.Attach(n), 1, 4); err != nil {
				return scalResult{}, err
			}
		default:
			fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
			serverFS = append(serverFS, fs)
			if _, err := rfsrv.NewServer(n, fs).ServeMX(mx.Attach(n), 1, 4); err != nil {
				return scalResult{}, err
			}
		}
	}

	var (
		failure  error
		samples  []sim.Time
		started  sim.Time
		finished sim.Time
		done     int
	)
	env.Spawn("seed", func(p *sim.Proc) {
		var inos []kernel.InodeID
		if scenario != "nbd" {
			var err error
			if inos, err = msSeedRfsrv(p, serverFS, serverNodes, clients); err != nil {
				failure = err
				return
			}
		}
		started = p.Now()
		for i := 0; i < clients; i++ {
			i := i
			node := cl.AddNode(fmt.Sprintf("client%d", i))
			env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
				lat, err := c.msClient(p, scenario, node, serverIDs, inos, i, clients)
				if err != nil && failure == nil {
					failure = err
					return
				}
				samples = append(samples, lat...)
				if p.Now() > finished {
					finished = p.Now()
				}
				done++
			})
		}
	})
	env.Run(0)
	if failure != nil {
		return scalResult{}, failure
	}
	if done != clients {
		return scalResult{}, fmt.Errorf("figures: %d/%d multiserver clients finished (%s s=%d)", done, clients, scenario, servers)
	}
	return summarize(samples, clients*scalFilePerCli, finished-started), nil
}

// msClient runs one client's workload against the striped servers and
// returns its latency samples.
func (c Config) msClient(p *sim.Proc, scenario string, node *hw.Node, servers []hw.NodeID, inos []kernel.InodeID, i, clients int) ([]sim.Time, error) {
	switch scenario {
	case "orfs-direct":
		cluster, err := msCluster(p, node, servers, msWindow)
		if err != nil {
			return nil, err
		}
		return scalDirectReads(p, node, cluster, inos[i])

	case "orfs-buffered":
		cluster, err := msCluster(p, node, servers, msWindow)
		if err != nil {
			return nil, err
		}
		osys := kernel.NewOS(node, 0)
		osys.Mount("/mnt", orfs.New("orfs", cluster))
		return scalBufferedReads(p, node, osys, fmt.Sprintf("/mnt/f%d", i), 0)

	case "nbd":
		m := mx.Attach(node)
		totalBlocks := clients * scalFilePerCli / nbd.BlockSize
		cls := make([]*nbd.Client, len(servers))
		for j, sid := range servers {
			bc, err := nbd.NewClient(m, uint8(10+j), sid, 1, totalBlocks)
			if err != nil {
				return nil, err
			}
			if err := bc.SetWindow(msWindow); err != nil {
				return nil, err
			}
			cls[j] = bc
		}
		dev, err := nbd.NewStripedDevice(cls)
		if err != nil {
			return nil, err
		}
		osys := kernel.NewOS(node, 0)
		// Combine enough device pages per miss that the resulting block
		// queue spans every server's window.
		osys.SetReadChunkPages(msWindow * len(servers))
		osys.Mount("/dev", dev)
		return scalBufferedReads(p, node, osys, "/dev/disk", int64(i)*scalFilePerCli)
	}
	return nil, fmt.Errorf("figures: unknown multiserver scenario %q", scenario)
}

// MultiServer runs the whole suite and returns two figures: aggregate
// throughput and p50/p99 request latency against the server count,
// with the window and client count fixed.
func (c Config) MultiServer() ([]*Figure, error) {
	var bwSeries, latSeries []netpipe.Series
	for _, scen := range msScenarios {
		var bw netpipe.Series
		var p50s, p99s netpipe.Series
		bw.Label = scen
		p50s.Label, p99s.Label = scen+" p50", scen+" p99"
		for _, s := range msServersAxis {
			r, err := c.msRun(scen, s, msClients)
			if err != nil {
				return nil, err
			}
			bw.Points = append(bw.Points, netpipe.Point{Size: s, MBps: r.mbps})
			p50s.Points = append(p50s.Points, netpipe.Point{Size: s, OneWay: r.p50})
			p99s.Points = append(p99s.Points, netpipe.Point{Size: s, OneWay: r.p99})
		}
		bwSeries = append(bwSeries, bw)
		latSeries = append(latSeries, p50s, p99s)
	}
	bwFig := &Figure{
		ID:     "multiserver",
		Title:  fmt.Sprintf("Aggregate striped-read throughput vs server count (%d clients, window %d, %d KB stripes)", msClients, msWindow, msStripe/1024),
		XLabel: "servers (data striped across)", YLabel: "aggregate throughput (MB/s)",
		Series: bwSeries,
		Expected: "beyond the paper: its platform serves every client from one node; " +
			"striping should scale aggregate bandwidth with the server count until " +
			"client links saturate",
	}
	latFig := &Figure{
		ID:     "multiserver-lat",
		Title:  "Striped-read request latency vs server count",
		XLabel: "servers (data striped across)", YLabel: "latency p50/p99 (µs)",
		Series: latSeries,
		Expected: "more servers drain the same per-client window faster, so request " +
			"latency falls as the cluster widens",
	}
	return []*Figure{bwFig, latFig}, nil
}
