package figures

import "testing"

func TestAblationCombining(t *testing.T) {
	t.Parallel()
	f, err := quick().AblationCombining()
	if err != nil {
		t.Fatal(err)
	}
	base := f.Series[0].Points[0].MBps // combine=1
	high := f.Series[3].Points[0].MBps // combine=8 (32KB: the eager sweet spot)
	direct := f.Series[len(f.Series)-1].Points[0].MBps
	if high < base*1.5 {
		t.Errorf("combining x8 gained only %.1f→%.1f MB/s, want ≥1.5×", base, high)
	}
	if high > direct*1.05 {
		t.Errorf("combined buffered (%.1f) should not beat direct (%.1f)", high, direct)
	}
	// Monotone non-decreasing while requests stay in the eager regime
	// (combine ≤ 8 → ≤ 32KB). Beyond that, requests cross into the
	// rendezvous regime and may dip — a real effect of the MX message
	// classes, deliberately not asserted away.
	prev := 0.0
	for _, s := range f.Series[:4] {
		v := s.Points[0].MBps
		if v < prev*0.97 {
			t.Errorf("combining regressed: %s at %.1f after %.1f", s.Label, v, prev)
		}
		prev = v
	}
}

func TestAblationPhysicalAPI(t *testing.T) {
	t.Parallel()
	f, err := quick().AblationPhysicalAPI()
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Series[0].Points {
		with := f.Series[0].Points[i]
		without := f.Series[1].Points[i]
		if with.MBps <= without.MBps {
			t.Errorf("size %d: physical API (%.1f) not faster than stock GM (%.1f)",
				with.Size, with.MBps, without.MBps)
		}
	}
	// The gap at the plateau should be substantial (an extra copy per
	// page plus registered-recv lookups).
	with := f.Series[0].Points[len(f.Series[0].Points)-1].MBps
	without := f.Series[1].Points[len(f.Series[1].Points)-1].MBps
	if g := (with - without) / without; g < 0.05 {
		t.Errorf("physical API gain only %.1f%% at plateau", g*100)
	}
}
