// Package figures regenerates every table and figure of the paper's
// evaluation from the simulated cluster: the experiment harness behind
// cmd/figures, bench_test.go and EXPERIMENTS.md.
//
// Each FigN function builds the cluster(s) it needs, runs the paper's
// workload, and returns labelled series plus the paper's qualitative
// expectation, so callers can print measured-vs-expected side by side.
package figures

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/netpipe"
	"repro/internal/sim"
)

// Config tunes experiment effort.
type Config struct {
	// Iters is the per-size round-trip count (default 10).
	Iters int
	// Warmup exchanges per size (default 2).
	Warmup int
	// Trace, if set, receives per-message driver trace records
	// (virtual time plus a formatted event line).
	Trace func(t sim.Time, format string, args ...any)
}

// DefaultConfig returns the settings used for EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Iters: 10, Warmup: 2} }

// Figure is one reproduced plot.
type Figure struct {
	ID       string // e.g. "fig5a"
	Title    string
	XLabel   string
	YLabel   string
	Series   []netpipe.Series
	Expected string // the paper's qualitative claim, for EXPERIMENTS.md
	// Unit overrides the non-latency value unit (default "MB/s") for
	// figures whose y axis is a count or ratio rather than bandwidth.
	Unit string
}

// Table is one reproduced table.
type Table struct {
	ID       string
	Title    string
	Columns  []string
	Rows     [][]string
	Expected string
}

// Render formats a figure as aligned text columns (size + one column
// per series, latency in µs or bandwidth in MB/s depending on kind).
func (f *Figure) Render(latency bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "   x: %s, y: %s\n", f.XLabel, f.YLabel)
	fmt.Fprintf(&b, "%12s", "size(B)")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", trunc(s.Label, 22))
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%12d", f.Series[0].Points[i].Size)
		for _, s := range f.Series {
			if i >= len(s.Points) {
				fmt.Fprintf(&b, " %22s", "-")
				continue
			}
			pt := s.Points[i]
			if latency {
				fmt.Fprintf(&b, " %20.2fµs", float64(pt.OneWay.Nanoseconds())/1000)
			} else {
				unit := f.Unit
				if unit == "" {
					unit = "MB/s"
				}
				fmt.Fprintf(&b, " %17.1f %s", pt.MBps, unit)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "   paper: %s\n", f.Expected)
	return b.String()
}

// Render formats a table as text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	line(t.Columns)
	for i, w := range widths {
		_ = i
		b.WriteString("|")
		b.WriteString(strings.Repeat("-", w+2))
	}
	b.WriteString("|\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Expected != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Expected)
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// pairMaker builds the two transport ends on freshly created nodes.
type pairMaker func(p *sim.Proc, a, b *hw.Node) (netpipe.Transport, netpipe.Transport, error)

// pingpong builds a two-node cluster and measures the schedule over
// the transport pair.
func (c Config) pingpong(model hw.LinkModel, sizes []int, mk pairMaker) ([]netpipe.Point, error) {
	env := sim.NewEngine()
	if c.Trace != nil {
		env.SetTrace(c.Trace)
	}
	cl := hw.NewCluster(env, hw.DefaultParams(), model)
	a, b := cl.AddNode("a"), cl.AddNode("b")
	var pts []netpipe.Point
	var setupErr, runErr error
	ready := sim.NewSignal(env)
	var ta, tb netpipe.Transport
	env.Spawn("setup", func(p *sim.Proc) {
		ta, tb, setupErr = mk(p, a, b)
		ready.Fire()
	})
	r := &netpipe.Runner{Iters: c.iters(), Warmup: c.warmup()}
	env.Spawn("responder", func(p *sim.Proc) {
		ready.Wait(p)
		if setupErr != nil {
			return
		}
		if err := r.Respond(p, tb, sizes); err != nil && runErr == nil {
			runErr = err
		}
	})
	env.Spawn("initiator", func(p *sim.Proc) {
		ready.Wait(p)
		if setupErr != nil {
			return
		}
		p.Sleep(10 * sim.Time(1000))
		var err error
		pts, err = r.Measure(p, ta, sizes)
		if err != nil && runErr == nil {
			runErr = err
		}
	})
	env.Run(0)
	if setupErr != nil {
		return nil, setupErr
	}
	if runErr != nil {
		return nil, runErr
	}
	if pts == nil {
		return nil, fmt.Errorf("figures: measurement deadlocked")
	}
	return pts, nil
}

func (c Config) iters() int {
	if c.Iters <= 0 {
		return 10
	}
	return c.Iters
}

func (c Config) warmup() int {
	if c.Warmup < 0 {
		return 0
	}
	if c.Warmup == 0 {
		return 2
	}
	return c.Warmup
}

// All runs every experiment, in paper order.
func (c Config) All() ([]*Figure, []*Table, error) {
	var figs []*Figure
	var tabs []*Table
	type figFn func() (*Figure, error)
	for _, fn := range []figFn{
		c.Fig1b, c.Fig3b, c.Fig4a, c.Fig4b,
		c.Fig5a, c.Fig5b, c.Fig6, c.Fig7a, c.Fig7b,
		c.Fig8a, c.Fig8b,
	} {
		f, err := fn()
		if err != nil {
			return nil, nil, err
		}
		figs = append(figs, f)
	}
	t1, err := c.Table1()
	if err != nil {
		return nil, nil, err
	}
	tabs = append(tabs, t1)
	return figs, tabs, nil
}

// Latency reports whether a figure plots latency (vs bandwidth).
func (f *Figure) Latency() bool { return strings.Contains(f.YLabel, "µs") }
