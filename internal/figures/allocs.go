package figures

// This file holds the host-allocation probe behind the PR 6 zero-alloc
// data-path pass: a steady-state measurement of how many Go heap
// allocations one pipelined request costs on the host, after the
// per-object scratch (encode buffers, part freelists, slot-staged
// requests) has warmed up. bench_test.go reports it as a metric and
// alloc_gate_test.go pins a ceiling on it, so a regression that
// reintroduces per-request garbage fails CI rather than silently
// eroding simulation throughput.

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/rfsrv"
	"repro/internal/sim"
)

// rpaWarmup is how many operations run before counting: enough to
// populate every freelist and grow every scratch buffer to its
// steady-state capacity.
const rpaWarmup = 32

// SizePublishAllocs measures the steady-state host allocations per
// extending one-page write through a 3-server striped cluster with the
// batched size-publish queue on (DESIGN.md §11): the write itself plus
// the amortized share of the combined flush that drains every
// DefaultSizePublishBatch writes. The PR 7 gate pins this so the
// coalescing path cannot quietly regrow per-write garbage.
func SizePublishAllocs(ops int) (float64, error) {
	if ops <= 0 {
		return 0, fmt.Errorf("figures: SizePublishAllocs needs ops > 0")
	}
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	var serverIDs []hw.NodeID
	for j := 0; j < 3; j++ {
		n := cl.AddNode(fmt.Sprintf("server%d", j))
		serverIDs = append(serverIDs, n.ID)
		fs := memfs.New(fmt.Sprintf("backing%d", j), n, 0)
		if _, err := rfsrv.NewServer(n, fs).ServeMX(mx.Attach(n), 1, 4); err != nil {
			return 0, err
		}
	}
	client := cl.AddNode("client")

	var failure error
	var allocs float64
	env.Spawn("probe", func(p *sim.Proc) {
		cmx := mx.Attach(client)
		sessions := make([]*rfsrv.Session, len(serverIDs))
		for i, id := range serverIDs {
			fc, err := rfsrv.NewMXClient(cmx, uint8(10+i), true, client.Kernel, id, 1)
			if err != nil {
				failure = err
				return
			}
			if sessions[i], err = rfsrv.NewSession(p, fc, 8); err != nil {
				failure = err
				return
			}
		}
		cluster, err := rfsrv.NewCluster(p, sessions, mem.PageSize)
		if err != nil {
			failure = err
			return
		}
		if err := cluster.SetSizePublishBatch(rfsrv.DefaultSizePublishBatch); err != nil {
			failure = err
			return
		}
		attr, err := cluster.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "probe"})
		if err != nil {
			failure = err
			return
		}
		va, err := client.Kernel.Mmap(mem.PageSize, "probe-buf")
		if err != nil {
			failure = err
			return
		}
		vec := core.Of(core.KernelSeg(client.Kernel, va, mem.PageSize))
		op := func(i int) error {
			_, err := cluster.Write(p, attr.Attr.Ino, int64(i)*mem.PageSize, vec)
			return err
		}
		n := 0
		for i := 0; i < rpaWarmup; i++ {
			if failure = op(n); failure != nil {
				return
			}
			n++
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < ops; i++ {
			if failure = op(n); failure != nil {
				return
			}
			n++
		}
		runtime.ReadMemStats(&after)
		allocs = float64(after.Mallocs-before.Mallocs) / float64(ops)
	})
	env.Run(0)
	if failure != nil {
		return 0, failure
	}
	return allocs, nil
}

// RequestPathAllocs measures the steady-state host allocations per
// synchronous 64 KB operation (alternating write and read) through one
// Session to one MX server, measured over ops operations with
// runtime.MemStats — the whole request path: encode, slot staging,
// transfer, server dispatch/worker, decode. The simulation is
// single-threaded on the host, so the mallocs delta is exact.
func RequestPathAllocs(ops int) (float64, error) {
	if ops <= 0 {
		return 0, fmt.Errorf("figures: RequestPathAllocs needs ops > 0")
	}
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	server := cl.AddNode("server")
	fs := memfs.New("backing", server, 0)
	if _, err := rfsrv.NewServer(server, fs).ServeMX(mx.Attach(server), 1, 4); err != nil {
		return 0, err
	}
	client := cl.AddNode("client")

	var failure error
	var allocs float64
	env.Spawn("probe", func(p *sim.Proc) {
		fc, err := rfsrv.NewMXClient(mx.Attach(client), 10, true, client.Kernel, server.ID, 1)
		if err != nil {
			failure = err
			return
		}
		sess, err := rfsrv.NewSession(p, fc, 8)
		if err != nil {
			failure = err
			return
		}
		attr, err := sess.Meta(p, &rfsrv.Req{Op: rfsrv.OpCreate, Ino: 0, Name: "probe"})
		if err != nil {
			failure = err
			return
		}
		const chunk = 64 * 1024
		va, err := client.Kernel.Mmap(chunk, "probe-buf")
		if err != nil {
			failure = err
			return
		}
		vec := core.Of(core.KernelSeg(client.Kernel, va, chunk))
		op := func(i int) error {
			off := int64(i%8) * chunk
			if i%2 == 0 {
				_, err := sess.Write(p, attr.Attr.Ino, off, vec)
				return err
			}
			_, err := sess.Read(p, attr.Attr.Ino, off, vec)
			return err
		}
		for i := 0; i < rpaWarmup; i++ {
			if failure = op(i); failure != nil {
				return
			}
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < ops; i++ {
			if failure = op(i); failure != nil {
				return
			}
		}
		runtime.ReadMemStats(&after)
		allocs = float64(after.Mallocs-before.Mallocs) / float64(ops)
	})
	env.Run(0)
	if failure != nil {
		return 0, failure
	}
	return allocs, nil
}
