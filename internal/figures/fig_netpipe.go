package figures

// This file holds the ping-pong figures measured by the netpipe
// harness: Fig 1(b) registration-vs-copy, Fig 4(a) physical vs
// registered-virtual GM, Fig 5(a)/5(b) GM-vs-MX latency and bandwidth,
// Fig 6 medium-message copy removal, and Fig 8(a)/8(b) sockets.
import (
	"fmt"

	"time"

	"repro/internal/gm"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/netpipe"
	"repro/internal/sim"
	"repro/internal/sockets"
	"repro/internal/vm"
)

func gmPair(mode netpipe.AddrMode, maxSize int) pairMaker {
	return func(p *sim.Proc, a, b *hw.Node) (netpipe.Transport, netpipe.Transport, error) {
		ta, err := netpipe.NewGMEnd(p, gm.Attach(a), 1, mode, b.ID, 1, maxSize)
		if err != nil {
			return nil, nil, err
		}
		tb, err := netpipe.NewGMEnd(p, gm.Attach(b), 1, mode, a.ID, 1, maxSize)
		return ta, tb, err
	}
}

func mxPair(mode netpipe.AddrMode, maxSize int, contiguous bool, opts ...mx.Option) pairMaker {
	return func(p *sim.Proc, a, b *hw.Node) (netpipe.Transport, netpipe.Transport, error) {
		ta, err := netpipe.NewMXEnd(mx.Attach(a), 1, mode, b.ID, 1, maxSize, contiguous, opts...)
		if err != nil {
			return nil, nil, err
		}
		tb, err := netpipe.NewMXEnd(mx.Attach(b), 1, mode, a.ID, 1, maxSize, contiguous, opts...)
		return ta, tb, err
	}
}

func sockPair(family string) pairMaker {
	return func(p *sim.Proc, a, b *hw.Node) (netpipe.Transport, netpipe.Transport, error) {
		var sa, sb sockets.Stack
		var err error
		switch family {
		case "mx":
			if sa, err = sockets.NewMXStack(mx.Attach(a), 7); err != nil {
				return nil, nil, err
			}
			if sb, err = sockets.NewMXStack(mx.Attach(b), 7); err != nil {
				return nil, nil, err
			}
		case "gm":
			if sa, err = sockets.NewGMStack(gm.Attach(a), 7); err != nil {
				return nil, nil, err
			}
			if sb, err = sockets.NewGMStack(gm.Attach(b), 7); err != nil {
				return nil, nil, err
			}
		}
		l, err := sb.Listen(5)
		if err != nil {
			return nil, nil, err
		}
		var server sockets.Conn
		accepted := sim.NewSignal(p.Engine())
		p.Engine().Spawn("accept", func(ap *sim.Proc) {
			server, _ = l.Accept(ap)
			accepted.Fire()
		})
		client, err := sa.Dial(p, int(b.ID), 5)
		if err != nil {
			return nil, nil, err
		}
		accepted.Wait(p)
		const maxSize = 1 << 20
		ta, err := netpipe.NewSockEnd(a, client, maxSize)
		if err != nil {
			return nil, nil, err
		}
		tb, err := netpipe.NewSockEnd(b, server, maxSize)
		return ta, tb, err
	}
}

// RunPingPong is the generic entry point behind cmd/netpipe: a
// ping-pong measurement over a named transport.
func RunPingPong(transport string, mode netpipe.AddrMode, model hw.LinkModel, sizes []int, cfg Config) ([]netpipe.Point, error) {
	var mk pairMaker
	switch transport {
	case "gm":
		mk = gmPair(mode, sizes[len(sizes)-1])
	case "mx":
		mk = mxPair(mode, sizes[len(sizes)-1], mode != netpipe.UserBuf)
	case "sockets-gm":
		mk = sockPair("gm")
	case "sockets-mx":
		mk = sockPair("mx")
	default:
		return nil, fmt.Errorf("figures: unknown transport %q", transport)
	}
	return cfg.pingpong(model, sizes, mk)
}

// Fig1b reproduces Figure 1(b): copy cost vs memory registration /
// deregistration cost, measured on the simulated host.
func (c Config) Fig1b() (*Figure, error) {
	env := sim.NewEngine()
	cl := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	node := cl.AddNode("n")
	g := gm.Attach(node)
	params := cl.Params

	sizes := []int{4096, 8192, 16384, 32768, 65536, 131072, 196608, 262144}
	mk := func(label string) netpipe.Series { return netpipe.Series{Label: label} }
	copyP3, copyP4 := mk("Copy (P3 1.2GHz)"), mk("Copy (P4 2.6GHz)")
	reg, dereg, both := mk("Memory Registration"), mk("Memory De-registration"), mk("Register + Dereg.")

	var setupErr error
	env.Spawn("bench", func(p *sim.Proc) {
		port, err := g.OpenPort(1, false)
		if err != nil {
			setupErr = err
			return
		}
		as := node.NewUserSpace("app")
		for _, n := range sizes {
			va, err := as.Mmap(n, "buf")
			if err != nil {
				setupErr = err
				return
			}
			point := func(s *netpipe.Series, d sim.Time) {
				s.Points = append(s.Points, netpipe.Point{Size: n, OneWay: d})
			}
			// Copy costs straight from the host model (two CPU grades).
			point(&copyP3, params.CopyTimeAt(n, params.CopyBandwidthP3))
			point(&copyP4, params.CopyTimeAt(n, params.CopyBandwidthP4))
			// Registration costs measured by doing it.
			t0 := p.Now()
			region, err := port.RegisterMemory(p, as, va, n)
			if err != nil {
				setupErr = err
				return
			}
			regT := p.Now() - t0
			t1 := p.Now()
			if err := port.DeregisterMemory(p, region); err != nil {
				setupErr = err
				return
			}
			deregT := p.Now() - t1
			point(&reg, regT)
			point(&dereg, deregT)
			point(&both, regT+deregT)
		}
	})
	env.Run(0)
	if setupErr != nil {
		return nil, setupErr
	}
	return &Figure{
		ID: "fig1b", Title: "Copy vs memory registration cost (GM)",
		XLabel: "message size (bytes)", YLabel: "overhead (µs)",
		Series: []netpipe.Series{copyP3, copyP4, reg, dereg, both},
		Expected: "registration ≈3µs/page; deregistration dominated by ≈200µs base; " +
			"copying beats register+deregister for small/medium buffers",
	}, nil
}

// Fig4a reproduces Figure 4(a): kernel GM latency with registered
// virtual memory vs the physical-address primitives.
func (c Config) Fig4a() (*Figure, error) {
	sizes := []int{16, 64, 256, 1024, 4096}
	virt, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.KernelBuf, 8192))
	if err != nil {
		return nil, err
	}
	phys, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.PhysBuf, 8192))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig4a", Title: "In-kernel GM latency: registered virtual vs physical addresses",
		XLabel: "message size (bytes)", YLabel: "one-way latency (µs)",
		Series: []netpipe.Series{
			{Label: "Memory Registration", Points: virt},
			{Label: "Physical Address", Points: phys},
		},
		Expected: "physical addressing saves ≈0.5µs per side (≈10%)",
	}, nil
}

// Fig5a reproduces Figure 5(a): GM vs MX small-message latency, user
// and kernel.
func (c Config) Fig5a() (*Figure, error) {
	sizes := netpipe.Sizes(4096)
	gmU, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 8192))
	if err != nil {
		return nil, err
	}
	gmK, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.KernelBuf, 8192))
	if err != nil {
		return nil, err
	}
	mxU, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.UserBuf, 8192, false))
	if err != nil {
		return nil, err
	}
	mxK, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 8192, true))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig5a", Title: "GM vs MX small-message latency",
		XLabel: "message size (bytes)", YLabel: "one-way latency (µs)",
		Series: []netpipe.Series{
			{Label: "GM User", Points: gmU},
			{Label: "GM Kernel", Points: gmK},
			{Label: "MX User", Points: mxU},
			{Label: "MX Kernel", Points: mxK},
		},
		Expected: "MX ≈4.2µs user==kernel; GM 6.7µs user, ≈2µs worse in kernel",
	}, nil
}

// Fig5b reproduces Figure 5(b): GM vs MX bandwidth.
func (c Config) Fig5b() (*Figure, error) {
	sizes := netpipe.Sizes(1 << 20)
	gmU, err := c.pingpong(hw.PCIXD, sizes, gmPair(netpipe.UserBuf, 1<<20))
	if err != nil {
		return nil, err
	}
	mxU, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.UserBuf, 1<<20, false))
	if err != nil {
		return nil, err
	}
	mxKP, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.PhysBuf, 1<<20, false))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig5b", Title: "GM vs MX bandwidth",
		XLabel: "message size (bytes)", YLabel: "bandwidth (MB/s)",
		Series: []netpipe.Series{
			{Label: "GM", Points: gmU},
			{Label: "MX User", Points: mxU},
			{Label: "MX Kernel Physical", Points: mxKP},
		},
		Expected: "all reach ≈245 MB/s at 1MB; GM leads mid sizes (100% registration-cache reuse); " +
			"MX kernel-physical ≥ MX user for large messages (cheaper page locking)",
	}, nil
}

// Fig6 reproduces Figure 6: removing the medium-message copies in the
// MX kernel interface (physically contiguous kernel buffers).
func (c Config) Fig6() (*Figure, error) {
	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
	mxU, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.UserBuf, 1<<19, false))
	if err != nil {
		return nil, err
	}
	std, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 1<<19, true))
	if err != nil {
		return nil, err
	}
	noSend, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 1<<19, true, mx.WithNoSendCopy()))
	if err != nil {
		return nil, err
	}
	noCopy, err := c.pingpong(hw.PCIXD, sizes, mxPair(netpipe.KernelBuf, 1<<19, true, mx.WithNoSendCopy(), mx.WithNoRecvCopy()))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig6", Title: "Medium-message copy removal in the MX kernel interface",
		XLabel: "message size (bytes)", YLabel: "bandwidth (MB/s)",
		Series: []netpipe.Series{
			{Label: "MX User", Points: mxU},
			{Label: "MX Kernel", Points: std},
			{Label: "MX Kernel No-send-copy", Points: noSend},
			{Label: "MX Kernel No-copy", Points: noCopy},
		},
		Expected: "no-send-copy ≈ +17% at 32KB; no-copy ≈ +15% more; " +
			"the >32KB (rendezvous) regime initially sits below the extrapolated medium curve",
	}, nil
}

// Fig8a reproduces Figure 8(a): SOCKETS-MX vs SOCKETS-GM latency
// (PCI-XE cards).
func (c Config) Fig8a() (*Figure, error) {
	sizes := netpipe.Sizes(4096)
	gmS, err := c.pingpong(hw.PCIXE, sizes, sockPair("gm"))
	if err != nil {
		return nil, err
	}
	mxS, err := c.pingpong(hw.PCIXE, sizes, sockPair("mx"))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig8a", Title: "SOCKETS-MX vs SOCKETS-GM small-message latency (PCI-XE)",
		XLabel: "message size (bytes)", YLabel: "one-way latency (µs)",
		Series: []netpipe.Series{
			{Label: "Sockets-GM", Points: gmS},
			{Label: "Sockets-MX", Points: mxS},
		},
		Expected: "Sockets-MX ≈5µs (1µs over raw MX); Sockets-GM ≈15µs",
	}, nil
}

// Fig8b reproduces Figure 8(b): SOCKETS-MX vs SOCKETS-GM bandwidth.
func (c Config) Fig8b() (*Figure, error) {
	sizes := netpipe.Sizes(1 << 20)
	gmS, err := c.pingpong(hw.PCIXE, sizes, sockPair("gm"))
	if err != nil {
		return nil, err
	}
	mxS, err := c.pingpong(hw.PCIXE, sizes, sockPair("mx"))
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig8b", Title: "SOCKETS-MX vs SOCKETS-GM bandwidth (PCI-XE)",
		XLabel: "message size (bytes)", YLabel: "bandwidth (MB/s)",
		Series: []netpipe.Series{
			{Label: "Sockets-GM", Points: gmS},
			{Label: "Sockets-MX", Points: mxS},
		},
		Expected: "Sockets-MX higher everywhere: large gains for medium sizes, ≈+50% at 1MB; " +
			"Sockets-GM stuck below ≈70% of the 500 MB/s link",
	}, nil
}

var _ = time.Microsecond
var _ = mem.PageSize
var _ = vm.PageSize
