// Package nbd implements the Network Block Device client/server pair
// the paper names as its third in-kernel application (§5.4, §6): a
// client at the bottom of the storage stack that forwards block
// accesses to a remote server, "allowing remote partition mounting
// such as with iSCSI".
//
// The paper's prediction — which this package lets the benchmarks test
// — is that NBD "manipulates the page-cache in a similar way a
// distributed file system client does", so the physical-address-based
// kernel interface should benefit it the same way it benefits buffered
// ORFS access.
//
// The device is exposed to the VFS as a filesystem with a single file
// ("disk"), the moral equivalent of /dev/nbd0: buffered access to it
// goes through the page cache in page-sized transfers, direct access
// bypasses it, exactly like a raw block device node.
package nbd

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// BlockSize is the device block size (one page, matching the
// page-cache granularity the paper discusses).
const BlockSize = mem.PageSize

// protocol kinds (hw.Message.Kind).
const (
	kindRead uint8 = iota + 1
	kindWrite
	kindReadResp
	kindWriteResp
)

// Server exports a flat disk of n blocks, stored in physical frames so
// reads are served zero-copy.
type Server struct {
	node   *hw.Node
	blocks []*mem.Frame
	zero   *mem.Frame

	// Reads/Writes count served block operations.
	Reads, Writes sim.Counter
}

// NewServer allocates a disk of numBlocks blocks on node.
func NewServer(node *hw.Node, numBlocks int) (*Server, error) {
	zero, err := node.Mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	return &Server{node: node, blocks: make([]*mem.Frame, numBlocks), zero: zero}, nil
}

// NumBlocks returns the disk size in blocks.
func (s *Server) NumBlocks() int { return len(s.blocks) }

// frame returns the backing frame for block i, allocating on first
// write (nil for never-written blocks on the read path).
func (s *Server) frame(i int64, allocate bool) (*mem.Frame, error) {
	if i < 0 || i >= int64(len(s.blocks)) {
		return nil, fmt.Errorf("nbd: block %d out of range", i)
	}
	if s.blocks[i] == nil && allocate {
		f, err := s.node.Mem.AllocFrame()
		if err != nil {
			return nil, err
		}
		s.blocks[i] = f
	}
	return s.blocks[i], nil
}

// ServeMX serves the block protocol on an MX kernel endpoint (through
// the unified fabric).
func (s *Server) ServeMX(m *mx.MX, epID uint8, workers int) error {
	t, err := fabric.NewMX(m, epID, true)
	if err != nil {
		return err
	}
	return s.Serve(t, workers)
}

// Serve starts worker processes serving the block protocol on any
// vectorial fabric transport.
func (s *Server) Serve(t fabric.Transport, workers int) error {
	if caps := t.Caps(); !caps.Vectors || !caps.Physical {
		return fmt.Errorf("nbd: server needs a vectorial transport with physical addressing")
	}
	for w := 0; w < workers; w++ {
		s.node.Cluster.Env.Spawn(fmt.Sprintf("%s-nbd-%d", s.node.Name, w), func(p *sim.Proc) {
			s.worker(p, t)
		})
	}
	return nil
}

// request header: kind(1) seq(8) block(8) ep(1)
const hdrLen = 18

func encHdr(kind uint8, seq uint64, block int64, ep uint8) []byte {
	b := make([]byte, hdrLen)
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint64(b[9:], uint64(block))
	b[17] = ep
	return b
}

func decHdr(b []byte) (kind uint8, seq uint64, block int64, ep uint8, err error) {
	if len(b) < hdrLen {
		return 0, 0, 0, 0, fmt.Errorf("nbd: short header")
	}
	return b[0], binary.LittleEndian.Uint64(b[1:]), int64(binary.LittleEndian.Uint64(b[9:])), b[17], nil
}

func (s *Server) worker(p *sim.Proc, t fabric.Transport) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	bounceBuf, err := pool.Get(hdrLen + BlockSize)
	if err != nil {
		panic(err)
	}
	hdrBuf, err := pool.Get(hdrLen)
	if err != nil {
		panic(err)
	}
	bounce, hdrVA := bounceBuf.VA(), hdrBuf.VA()
	bounceVec := bounceBuf.KernelVec(hdrLen + BlockSize)
	reqMatch := core.Match{Bits: 1, Mask: 1} // requests have the low bit set
	for {
		rr, err := t.PostRecv(p, reqMatch, bounceVec)
		if err != nil {
			panic(err)
		}
		st := rr.Wait(p)
		raw, _ := kern.ReadBytes(bounce, st.Len)
		kind, seq, block, cep, err := decHdr(raw)
		if err != nil {
			continue
		}
		s.node.CPU.VFS(p) // request dispatch
		switch kind {
		case kindRead:
			s.Reads.Add(BlockSize)
			f, err := s.frame(block, false)
			status := uint8(kindReadResp)
			if err != nil {
				f = s.zero
				status = 0 // error marker: zero-filled reply, kind 0
			}
			if f == nil {
				f = s.zero
			}
			kern.WriteBytes(hdrVA, encHdr(status, seq, block, 0))
			v := core.Vector{
				core.KernelSeg(kern, hdrVA, hdrLen),
				core.PhysSeg(f.Addr(), BlockSize),
			}
			if _, err := t.Send(p, st.Src, cep, seq<<1, v); err != nil {
				panic(err)
			}
		case kindWrite:
			s.Writes.Add(BlockSize)
			f, err := s.frame(block, true)
			status := uint8(kindWriteResp)
			if err != nil {
				status = 0
			} else {
				s.node.CPU.Copy(p, BlockSize) // bounce → disk block
				copy(f.Data(), raw[hdrLen:])
			}
			kern.WriteBytes(hdrVA, encHdr(status, seq, block, 0))
			if _, err := t.Send(p, st.Src, cep, seq<<1, core.Of(core.KernelSeg(kern, hdrVA, hdrLen))); err != nil {
				panic(err)
			}
		}
	}
}

// Client is the in-kernel NBD client, speaking the block protocol over
// any vectorial fabric transport. It keeps a window of request slots
// (one by default — the synchronous protocol); SetWindow widens it so
// multiple block requests can be queued on the wire at once, each with
// its own header staging, demuxed by sequence number.
type Client struct {
	t         fabric.Transport
	node      *hw.Node
	server    hw.NodeID
	serverEP  uint8
	numBlocks int
	seq       uint64
	window    int
	free      *sim.Chan[*nbdSlot]
	inFlight  int

	// BlockReads/BlockWrites count issued block operations.
	BlockReads, BlockWrites sim.Counter
}

// nbdSlot is one request's header staging: the reply header lands at
// hdrVA, the request header stages at hdrVA+hdrLen.
type nbdSlot struct {
	hdrVA vm.VirtAddr
}

// NewClient connects an NBD client on an MX kernel endpoint.
func NewClient(m *mx.MX, epID uint8, server hw.NodeID, serverEP uint8, numBlocks int) (*Client, error) {
	t, err := fabric.NewMX(m, epID, true)
	if err != nil {
		return nil, err
	}
	return NewFabricClient(t, server, serverEP, numBlocks)
}

// NewFabricClient connects an NBD client over an established fabric
// transport (its header buffers come from the node's shared pool).
func NewFabricClient(t fabric.Transport, server hw.NodeID, serverEP uint8, numBlocks int) (*Client, error) {
	if caps := t.Caps(); !caps.Vectors || !caps.Physical {
		return nil, fmt.Errorf("nbd: client needs a vectorial transport with physical addressing")
	}
	node := t.Node()
	c := &Client{
		t: t, node: node, server: server, serverEP: serverEP,
		numBlocks: numBlocks,
		free:      sim.NewChan[*nbdSlot](node.Cluster.Env),
	}
	if err := c.addSlots(1); err != nil {
		return nil, err
	}
	c.window = 1
	return c, nil
}

func (c *Client) addSlots(n int) error {
	pool := fabric.PoolOf(c.node)
	for i := 0; i < n; i++ {
		buf, err := pool.Get(2 * hdrLen)
		if err != nil {
			return err
		}
		c.free.Send(&nbdSlot{hdrVA: buf.VA()})
	}
	return nil
}

// SetWindow widens the request window to w outstanding block requests
// (w = 1 is the synchronous protocol). It can only grow the window.
func (c *Client) SetWindow(w int) error {
	if w < c.window {
		return fmt.Errorf("nbd: window can only grow (%d -> %d)", c.window, w)
	}
	if err := c.addSlots(w - c.window); err != nil {
		return err
	}
	c.window = w
	return nil
}

// Window returns the configured request window.
func (c *Client) Window() int { return c.window }

// InFlight returns the number of outstanding block requests.
func (c *Client) InFlight() int { return c.inFlight }

// NumBlocks returns the device size in blocks.
func (c *Client) NumBlocks() int { return c.numBlocks }

// PendingBlock is one in-flight block request.
type PendingBlock struct {
	c        *Client
	slot     *nbdSlot
	seq      uint64
	idx      int64
	wantKind uint8
	op       fabric.Op
	done     bool
	err      error
}

// start issues one block request through the window, blocking while
// the window is full. recvExtra is the reply payload destination
// (reads), data the request payload (writes).
func (c *Client) start(p *sim.Proc, kind uint8, idx int64, frame *mem.Frame) (*PendingBlock, error) {
	slot := c.free.Recv(p)
	c.inFlight++
	c.seq++
	seq := c.seq
	kern := c.node.Kernel
	recv := core.Vector{core.KernelSeg(kern, slot.hdrVA, hdrLen)}
	var data core.Vector
	wantKind := kindWriteResp
	if kind == kindRead {
		// Reply: header into the slot, payload straight into the
		// caller's frame (vectorial, physically addressed).
		recv = append(recv, core.PhysSeg(frame.Addr(), BlockSize))
		wantKind = kindReadResp
	} else {
		data = core.Of(core.PhysSeg(frame.Addr(), BlockSize))
	}
	rr, err := c.t.PostRecv(p, core.Exact(seq<<1), recv)
	if err != nil {
		c.put(slot)
		return nil, err
	}
	hdrOff := slot.hdrVA + vm.VirtAddr(hdrLen) // separate request header slot
	if err := kern.WriteBytes(hdrOff, encHdr(kind, seq, idx, c.t.LocalEP())); err != nil {
		c.put(slot)
		return nil, err
	}
	v := append(core.Vector{core.KernelSeg(kern, hdrOff, hdrLen)}, data...)
	if _, err := c.t.Send(p, c.server, c.serverEP, seq<<1|1, v); err != nil {
		c.put(slot)
		return nil, err
	}
	return &PendingBlock{c: c, slot: slot, seq: seq, idx: idx, wantKind: wantKind, op: rr}, nil
}

func (c *Client) put(slot *nbdSlot) {
	c.inFlight--
	c.free.Send(slot)
}

// Wait retires the request; requests may be waited in any order.
func (pb *PendingBlock) Wait(p *sim.Proc) error {
	if pb.done {
		return pb.err
	}
	pb.done = true
	defer pb.c.put(pb.slot)
	st := pb.op.Wait(p)
	if st.Err != nil {
		pb.err = st.Err
		return pb.err
	}
	raw, _ := pb.c.node.Kernel.ReadBytes(pb.slot.hdrVA, hdrLen)
	kind, rseq, _, _, err := decHdr(raw)
	if err != nil {
		pb.err = err
		return err
	}
	if rseq != pb.seq {
		pb.err = fmt.Errorf("nbd: reply for seq %d, want %d", rseq, pb.seq)
	} else if kind != pb.wantKind {
		verb := "write"
		if pb.wantKind == kindReadResp {
			verb = "read"
		}
		pb.err = fmt.Errorf("nbd: %s of block %d failed", verb, pb.idx)
	}
	return pb.err
}

// StartRead queues a read of block idx into frame through the window.
func (c *Client) StartRead(p *sim.Proc, idx int64, frame *mem.Frame) (*PendingBlock, error) {
	c.BlockReads.Add(BlockSize)
	return c.start(p, kindRead, idx, frame)
}

// StartWrite queues a write of frame as block idx through the window.
func (c *Client) StartWrite(p *sim.Proc, idx int64, frame *mem.Frame) (*PendingBlock, error) {
	c.BlockWrites.Add(BlockSize)
	return c.start(p, kindWrite, idx, frame)
}

// ReadBlock reads block idx into frame — the page-cache path: the
// frame's physical address goes straight to the network layer.
func (c *Client) ReadBlock(p *sim.Proc, idx int64, frame *mem.Frame) error {
	pb, err := c.StartRead(p, idx, frame)
	if err != nil {
		return err
	}
	return pb.Wait(p)
}

// ReadBlocks reads consecutive blocks starting at idx into frames,
// keeping up to the window's worth of block requests queued — how the
// device pipelines multi-page accesses.
func (c *Client) ReadBlocks(p *sim.Proc, idx int64, frames []*mem.Frame) error {
	var inflight []*PendingBlock
	var firstErr error
	retire := func(pb *PendingBlock) {
		if err := pb.Wait(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i, f := range frames {
		if len(inflight) == c.window {
			pb := inflight[0]
			inflight = inflight[1:]
			retire(pb)
			if firstErr != nil {
				break
			}
		}
		pb, err := c.StartRead(p, idx+int64(i), f)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		inflight = append(inflight, pb)
	}
	for _, pb := range inflight {
		retire(pb)
	}
	return firstErr
}

// WriteBlock writes frame's first n bytes as block idx (rest zeroed
// server-side only on fresh blocks).
func (c *Client) WriteBlock(p *sim.Proc, idx int64, frame *mem.Frame, n int) error {
	pb, err := c.StartWrite(p, idx, frame)
	if err != nil {
		return err
	}
	return pb.Wait(p)
}

// Device adapts one or more clients to kernel.FileSystem: a filesystem
// holding the single file "disk" of the device's size, so the VFS page
// cache sits on top exactly as it would on a block special file.
//
// With several clients the device is striped at block granularity:
// block b is served by client b mod M (each backend stores its blocks
// at their global indices, sparse), so consecutive blocks of a
// combined page-cache fetch fan out round-robin across servers and the
// aggregate bandwidth grows with the server count — the block-device
// face of the same idea rfsrv.Cluster applies to files. One client
// degenerates to the plain single-server device, request for request.
//
// Unlike the file cluster the striped device needs no size-coherence
// protocol (rfsrv's per-inode size epochs, DESIGN.md §9): a block
// device's size is fixed at construction — NewStripedDevice pins it to
// the smallest backend and Truncate is rejected — so there is no
// end-of-file for writers to move and nothing for a per-client cache
// to go stale on. Capacity changes are a reconstruction, not an op.
type Device struct {
	cls    []*Client
	node   *hw.Node
	blocks int // device size: smallest backend (fixed at construction)
}

// NewDevice wraps a client for mounting.
func NewDevice(cl *Client) *Device {
	return &Device{cls: []*Client{cl}, node: cl.node, blocks: cl.NumBlocks()}
}

// NewStripedDevice builds a block-striped device over one client per
// server. All clients must live on the same node; the device size is
// the smallest backend size (every block must have a home).
func NewStripedDevice(cls []*Client) (*Device, error) {
	if len(cls) == 0 {
		return nil, fmt.Errorf("nbd: striped device needs at least one client")
	}
	blocks := cls[0].NumBlocks()
	for _, c := range cls[1:] {
		if c.node != cls[0].node {
			return nil, fmt.Errorf("nbd: striped device clients must share one node")
		}
		if c.NumBlocks() < blocks {
			blocks = c.NumBlocks()
		}
	}
	return &Device{cls: cls, node: cls[0].node, blocks: blocks}, nil
}

// cl returns the client owning block idx.
func (d *Device) cl(idx int64) *Client {
	return d.cls[int(idx%int64(len(d.cls)))]
}

// numBlocks returns the device size in blocks.
func (d *Device) numBlocks() int { return d.blocks }

const diskIno kernel.InodeID = 2

// FSName implements kernel.FileSystem.
func (d *Device) FSName() string { return "nbd" }

// Root implements kernel.FileSystem.
func (d *Device) Root() kernel.InodeID { return 1 }

func (d *Device) rootAttr() kernel.Attr {
	return kernel.Attr{Ino: 1, Kind: kernel.Directory, Version: 1}
}

func (d *Device) diskAttr() kernel.Attr {
	return kernel.Attr{
		Ino: diskIno, Kind: kernel.RegularFile,
		Size: int64(d.numBlocks()) * BlockSize, Version: 1,
	}
}

// Lookup implements kernel.FileSystem.
func (d *Device) Lookup(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	if dir != 1 {
		return kernel.Attr{}, kernel.ErrNotDir
	}
	if name != "disk" {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	return d.diskAttr(), nil
}

// Getattr implements kernel.FileSystem.
func (d *Device) Getattr(p *sim.Proc, ino kernel.InodeID) (kernel.Attr, error) {
	switch ino {
	case 1:
		return d.rootAttr(), nil
	case diskIno:
		return d.diskAttr(), nil
	}
	return kernel.Attr{}, kernel.ErrNotFound
}

// Readdir implements kernel.FileSystem.
func (d *Device) Readdir(p *sim.Proc, dir kernel.InodeID) ([]kernel.DirEntry, error) {
	if dir != 1 {
		return nil, kernel.ErrNotDir
	}
	return []kernel.DirEntry{{Name: "disk", Ino: diskIno, Kind: kernel.RegularFile}}, nil
}

// Create implements kernel.FileSystem (devices hold no new files).
func (d *Device) Create(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return kernel.Attr{}, kernel.ErrExists
}

// Mkdir implements kernel.FileSystem.
func (d *Device) Mkdir(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return kernel.Attr{}, kernel.ErrExists
}

// Unlink implements kernel.FileSystem.
func (d *Device) Unlink(p *sim.Proc, dir kernel.InodeID, name string) error {
	return kernel.ErrNotFound
}

// Rmdir implements kernel.FileSystem.
func (d *Device) Rmdir(p *sim.Proc, dir kernel.InodeID, name string) error {
	return kernel.ErrNotFound
}

// Truncate implements kernel.FileSystem (fixed-size device).
func (d *Device) Truncate(p *sim.Proc, ino kernel.InodeID, size int64) error {
	return kernel.ErrBadOffset
}

// ReadPage implements kernel.FileSystem: one block read, zero-copy
// into the page-cache frame.
func (d *Device) ReadPage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	if idx >= int64(d.numBlocks()) {
		return 0, nil
	}
	if err := d.cl(idx).ReadBlock(p, idx, frame); err != nil {
		return 0, err
	}
	return BlockSize, nil
}

// ReadPages implements kernel.PageRangeReader: a combined page-cache
// fetch becomes a queue of block requests pipelined through the
// client's window — the paper's prediction that NBD "manipulates the
// page-cache in a similar way a distributed file system client does",
// carried over to the windowed protocol.
func (d *Device) ReadPages(p *sim.Proc, ino kernel.InodeID, idx int64, frames []*mem.Frame) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	total := 0
	nb := int64(d.numBlocks())
	for i := range frames {
		if idx+int64(i) >= nb {
			frames = frames[:i]
			break
		}
		total += BlockSize
	}
	if len(frames) == 0 {
		return 0, nil
	}
	if err := d.readBlocks(p, idx, frames); err != nil {
		return 0, err
	}
	return total, nil
}

// readBlocks reads consecutive blocks starting at idx into frames,
// routing each block to its owning client and keeping every owner's
// window full — the striped generalization of Client.ReadBlocks (one
// client reduces to the identical request sequence).
func (d *Device) readBlocks(p *sim.Proc, idx int64, frames []*mem.Frame) error {
	var inflight []*PendingBlock
	var firstErr error
	retire := func(pb *PendingBlock) {
		if err := pb.Wait(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i, f := range frames {
		b := idx + int64(i)
		owner := d.cl(b)
		// Retire oldest-first until the owner can queue one more; the
		// oldest request frees a slot somewhere, and blocks round-robin
		// uniformly, so the owner's slot frees within len(cls) retires.
		for len(inflight) > 0 && owner.InFlight() >= owner.Window() {
			pb := inflight[0]
			inflight = inflight[1:]
			retire(pb)
			if firstErr != nil {
				break
			}
		}
		if firstErr != nil {
			break
		}
		pb, err := owner.StartRead(p, b, f)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		inflight = append(inflight, pb)
	}
	for _, pb := range inflight {
		retire(pb)
	}
	return firstErr
}

// WritePage implements kernel.FileSystem.
func (d *Device) WritePage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame, n int) error {
	if ino != diskIno {
		return kernel.ErrNotFound
	}
	if idx >= int64(d.numBlocks()) {
		return kernel.ErrBadOffset
	}
	return d.cl(idx).WriteBlock(p, idx, frame, n)
}

// ReadDirect implements kernel.FileSystem: block-aligned direct reads
// assembled from block RPCs through bounce frames. With a window above
// one, up to window block requests are queued, so consecutive blocks
// transfer back to back instead of paying a round trip each.
func (d *Device) ReadDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	n := v.TotalLen()
	size := int64(d.numBlocks()) * BlockSize
	if off >= size {
		return 0, nil
	}
	if int64(n) > size-off {
		n = int(size - off)
	}
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	type chunkReq struct {
		pb     *PendingBlock
		bounce *mem.Frame
		done   int // destination offset
		bOff   int // offset within the block
		chunk  int
	}
	var inflight []chunkReq
	done := 0
	retire := func(cr chunkReq) error {
		err := cr.pb.Wait(p)
		if err == nil {
			d.node.CPU.Copy(p, cr.chunk)
			d.node.Mem.Scatter(slice(xs, cr.done, cr.chunk), cr.bounce.Data()[cr.bOff:cr.bOff+cr.chunk])
		}
		d.node.Mem.Put(cr.bounce)
		return err
	}
	for issued := 0; issued < n; {
		idx := (off + int64(issued)) / BlockSize
		bOff := int((off + int64(issued)) % BlockSize)
		chunk := BlockSize - bOff
		if chunk > n-issued {
			chunk = n - issued
		}
		owner := d.cl(idx)
		for len(inflight) > 0 && owner.InFlight() >= owner.Window() {
			cr := inflight[0]
			inflight = inflight[1:]
			if err := retire(cr); err != nil {
				for _, rest := range inflight {
					rest.pb.Wait(p)
					d.node.Mem.Put(rest.bounce)
				}
				return done, err
			}
			done += cr.chunk
		}
		bounce, err := d.node.Mem.AllocFrame()
		if err != nil {
			// Surface the allocation failure instead of silently
			// returning a short read the caller would take for EOF.
			for _, rest := range inflight {
				rest.pb.Wait(p)
				d.node.Mem.Put(rest.bounce)
			}
			return done, err
		}
		pb, err := owner.StartRead(p, idx, bounce)
		if err != nil {
			d.node.Mem.Put(bounce)
			for _, rest := range inflight {
				rest.pb.Wait(p)
				d.node.Mem.Put(rest.bounce)
			}
			return done, err
		}
		inflight = append(inflight, chunkReq{pb: pb, bounce: bounce, done: issued, bOff: bOff, chunk: chunk})
		issued += chunk
	}
	for i, cr := range inflight {
		if err := retire(cr); err != nil {
			for _, rest := range inflight[i+1:] {
				rest.pb.Wait(p)
				d.node.Mem.Put(rest.bounce)
			}
			return done, err
		}
		done += cr.chunk
	}
	return done, nil
}

// WriteDirect implements kernel.FileSystem.
func (d *Device) WriteDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	n := v.TotalLen()
	size := int64(d.numBlocks()) * BlockSize
	if off >= size || int64(n) > size-off {
		return 0, kernel.ErrBadOffset
	}
	bounce, err := d.node.Mem.AllocFrame()
	if err != nil {
		return 0, err
	}
	defer d.node.Mem.Put(bounce)
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	done := 0
	for done < n {
		idx := (off + int64(done)) / BlockSize
		bOff := int((off + int64(done)) % BlockSize)
		chunk := BlockSize - bOff
		if chunk > n-done {
			chunk = n - done
		}
		owner := d.cl(idx)
		if bOff != 0 || chunk != BlockSize {
			// Read-modify-write for partial blocks.
			if err := owner.ReadBlock(p, idx, bounce); err != nil {
				return done, err
			}
		}
		data := d.node.Mem.Gather(slice(xs, done, chunk))
		d.node.CPU.Copy(p, chunk)
		copy(bounce.Data()[bOff:], data)
		if err := owner.WriteBlock(p, idx, bounce, BlockSize); err != nil {
			return done, err
		}
		done += chunk
	}
	return done, nil
}

// slice extracts [off, off+n) of an extent list.
func slice(xs []mem.Extent, off, n int) []mem.Extent {
	var out []mem.Extent
	for _, x := range xs {
		if n == 0 {
			break
		}
		if off >= x.Len {
			off -= x.Len
			continue
		}
		take := x.Len - off
		if take > n {
			take = n
		}
		out = append(out, mem.Extent{Addr: x.Addr + mem.PhysAddr(off), Len: take})
		n -= take
		off = 0
	}
	return out
}

var _ kernel.FileSystem = (*Device)(nil)
