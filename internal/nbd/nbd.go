// Package nbd implements the Network Block Device client/server pair
// the paper names as its third in-kernel application (§5.4, §6): a
// client at the bottom of the storage stack that forwards block
// accesses to a remote server, "allowing remote partition mounting
// such as with iSCSI".
//
// The paper's prediction — which this package lets the benchmarks test
// — is that NBD "manipulates the page-cache in a similar way a
// distributed file system client does", so the physical-address-based
// kernel interface should benefit it the same way it benefits buffered
// ORFS access.
//
// The device is exposed to the VFS as a filesystem with a single file
// ("disk"), the moral equivalent of /dev/nbd0: buffered access to it
// goes through the page cache in page-sized transfers, direct access
// bypasses it, exactly like a raw block device node.
package nbd

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/sim"
	"repro/internal/vm"
)

// BlockSize is the device block size (one page, matching the
// page-cache granularity the paper discusses).
const BlockSize = mem.PageSize

// protocol kinds (hw.Message.Kind).
const (
	kindRead uint8 = iota + 1
	kindWrite
	kindReadResp
	kindWriteResp
)

// Server exports a flat disk of n blocks, stored in physical frames so
// reads are served zero-copy.
type Server struct {
	node   *hw.Node
	blocks []*mem.Frame
	zero   *mem.Frame

	// Reads/Writes count served block operations.
	Reads, Writes sim.Counter
}

// NewServer allocates a disk of numBlocks blocks on node.
func NewServer(node *hw.Node, numBlocks int) (*Server, error) {
	zero, err := node.Mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	return &Server{node: node, blocks: make([]*mem.Frame, numBlocks), zero: zero}, nil
}

// NumBlocks returns the disk size in blocks.
func (s *Server) NumBlocks() int { return len(s.blocks) }

// frame returns the backing frame for block i, allocating on first
// write (nil for never-written blocks on the read path).
func (s *Server) frame(i int64, allocate bool) (*mem.Frame, error) {
	if i < 0 || i >= int64(len(s.blocks)) {
		return nil, fmt.Errorf("nbd: block %d out of range", i)
	}
	if s.blocks[i] == nil && allocate {
		f, err := s.node.Mem.AllocFrame()
		if err != nil {
			return nil, err
		}
		s.blocks[i] = f
	}
	return s.blocks[i], nil
}

// ServeMX serves the block protocol on an MX kernel endpoint (through
// the unified fabric).
func (s *Server) ServeMX(m *mx.MX, epID uint8, workers int) error {
	t, err := fabric.NewMX(m, epID, true)
	if err != nil {
		return err
	}
	return s.Serve(t, workers)
}

// Serve starts worker processes serving the block protocol on any
// vectorial fabric transport.
func (s *Server) Serve(t fabric.Transport, workers int) error {
	if caps := t.Caps(); !caps.Vectors || !caps.Physical {
		return fmt.Errorf("nbd: server needs a vectorial transport with physical addressing")
	}
	for w := 0; w < workers; w++ {
		s.node.Cluster.Env.Spawn(fmt.Sprintf("%s-nbd-%d", s.node.Name, w), func(p *sim.Proc) {
			s.worker(p, t)
		})
	}
	return nil
}

// request header: kind(1) seq(8) block(8) ep(1)
const hdrLen = 18

func encHdr(kind uint8, seq uint64, block int64, ep uint8) []byte {
	b := make([]byte, hdrLen)
	b[0] = kind
	binary.LittleEndian.PutUint64(b[1:], seq)
	binary.LittleEndian.PutUint64(b[9:], uint64(block))
	b[17] = ep
	return b
}

func decHdr(b []byte) (kind uint8, seq uint64, block int64, ep uint8, err error) {
	if len(b) < hdrLen {
		return 0, 0, 0, 0, fmt.Errorf("nbd: short header")
	}
	return b[0], binary.LittleEndian.Uint64(b[1:]), int64(binary.LittleEndian.Uint64(b[9:])), b[17], nil
}

func (s *Server) worker(p *sim.Proc, t fabric.Transport) {
	kern := s.node.Kernel
	pool := fabric.PoolOf(s.node)
	bounceBuf, err := pool.Get(hdrLen + BlockSize)
	if err != nil {
		panic(err)
	}
	hdrBuf, err := pool.Get(hdrLen)
	if err != nil {
		panic(err)
	}
	bounce, hdrVA := bounceBuf.VA(), hdrBuf.VA()
	bounceVec := bounceBuf.KernelVec(hdrLen + BlockSize)
	reqMatch := core.Match{Bits: 1, Mask: 1} // requests have the low bit set
	for {
		rr, err := t.PostRecv(p, reqMatch, bounceVec)
		if err != nil {
			panic(err)
		}
		st := rr.Wait(p)
		raw, _ := kern.ReadBytes(bounce, st.Len)
		kind, seq, block, cep, err := decHdr(raw)
		if err != nil {
			continue
		}
		s.node.CPU.VFS(p) // request dispatch
		switch kind {
		case kindRead:
			s.Reads.Add(BlockSize)
			f, err := s.frame(block, false)
			status := uint8(kindReadResp)
			if err != nil {
				f = s.zero
				status = 0 // error marker: zero-filled reply, kind 0
			}
			if f == nil {
				f = s.zero
			}
			kern.WriteBytes(hdrVA, encHdr(status, seq, block, 0))
			v := core.Vector{
				core.KernelSeg(kern, hdrVA, hdrLen),
				core.PhysSeg(f.Addr(), BlockSize),
			}
			if _, err := t.Send(p, st.Src, cep, seq<<1, v); err != nil {
				panic(err)
			}
		case kindWrite:
			s.Writes.Add(BlockSize)
			f, err := s.frame(block, true)
			status := uint8(kindWriteResp)
			if err != nil {
				status = 0
			} else {
				s.node.CPU.Copy(p, BlockSize) // bounce → disk block
				copy(f.Data(), raw[hdrLen:])
			}
			kern.WriteBytes(hdrVA, encHdr(status, seq, block, 0))
			if _, err := t.Send(p, st.Src, cep, seq<<1, core.Of(core.KernelSeg(kern, hdrVA, hdrLen))); err != nil {
				panic(err)
			}
		}
	}
}

// Client is the in-kernel NBD client, speaking the block protocol over
// any vectorial fabric transport.
type Client struct {
	t         fabric.Transport
	node      *hw.Node
	server    hw.NodeID
	serverEP  uint8
	numBlocks int
	seq       uint64
	lock      *sim.Resource
	hdrVA     vm.VirtAddr

	// BlockReads/BlockWrites count issued block operations.
	BlockReads, BlockWrites sim.Counter
}

// NewClient connects an NBD client on an MX kernel endpoint.
func NewClient(m *mx.MX, epID uint8, server hw.NodeID, serverEP uint8, numBlocks int) (*Client, error) {
	t, err := fabric.NewMX(m, epID, true)
	if err != nil {
		return nil, err
	}
	return NewFabricClient(t, server, serverEP, numBlocks)
}

// NewFabricClient connects an NBD client over an established fabric
// transport (its header buffers come from the node's shared pool).
func NewFabricClient(t fabric.Transport, server hw.NodeID, serverEP uint8, numBlocks int) (*Client, error) {
	if caps := t.Caps(); !caps.Vectors || !caps.Physical {
		return nil, fmt.Errorf("nbd: client needs a vectorial transport with physical addressing")
	}
	node := t.Node()
	hdrBuf, err := fabric.PoolOf(node).Get(hdrLen + BlockSize)
	if err != nil {
		return nil, err
	}
	return &Client{
		t: t, node: node, server: server, serverEP: serverEP,
		numBlocks: numBlocks, hdrVA: hdrBuf.VA(),
		lock: sim.NewResource(node.Cluster.Env, "nbd-lock", 1),
	}, nil
}

// NumBlocks returns the device size in blocks.
func (c *Client) NumBlocks() int { return c.numBlocks }

// ReadBlock reads block idx into frame — the page-cache path: the
// frame's physical address goes straight to the network layer.
func (c *Client) ReadBlock(p *sim.Proc, idx int64, frame *mem.Frame) error {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.BlockReads.Add(BlockSize)
	c.seq++
	seq := c.seq
	kern := c.node.Kernel
	// Reply: header into a kernel buffer, payload straight into the
	// caller's frame (vectorial, physically addressed).
	rr, err := c.t.PostRecv(p, core.Exact(seq<<1), core.Vector{
		core.KernelSeg(kern, c.hdrVA, hdrLen),
		core.PhysSeg(frame.Addr(), BlockSize),
	})
	if err != nil {
		return err
	}
	if err := c.sendReq(p, kindRead, seq, idx, nil); err != nil {
		return err
	}
	st := rr.Wait(p)
	if st.Err != nil {
		return st.Err
	}
	raw, _ := kern.ReadBytes(c.hdrVA, hdrLen)
	kind, rseq, _, _, err := decHdr(raw)
	if err != nil {
		return err
	}
	if rseq != seq {
		return fmt.Errorf("nbd: reply for seq %d, want %d", rseq, seq)
	}
	if kind != kindReadResp {
		return fmt.Errorf("nbd: read of block %d failed", idx)
	}
	return nil
}

// WriteBlock writes frame's first n bytes as block idx (rest zeroed
// server-side only on fresh blocks).
func (c *Client) WriteBlock(p *sim.Proc, idx int64, frame *mem.Frame, n int) error {
	c.lock.Acquire(p)
	defer c.lock.Release()
	c.BlockWrites.Add(n)
	c.seq++
	seq := c.seq
	kern := c.node.Kernel
	rr, err := c.t.PostRecv(p, core.Exact(seq<<1), core.Of(core.KernelSeg(kern, c.hdrVA, hdrLen)))
	if err != nil {
		return err
	}
	if err := c.sendReq(p, kindWrite, seq, idx, core.Of(core.PhysSeg(frame.Addr(), BlockSize))); err != nil {
		return err
	}
	st := rr.Wait(p)
	if st.Err != nil {
		return st.Err
	}
	raw, _ := kern.ReadBytes(c.hdrVA, hdrLen)
	kind, rseq, _, _, err := decHdr(raw)
	if err != nil {
		return err
	}
	if rseq != seq || kind != kindWriteResp {
		return fmt.Errorf("nbd: write of block %d failed", idx)
	}
	return nil
}

func (c *Client) sendReq(p *sim.Proc, kind uint8, seq uint64, block int64, data core.Vector) error {
	kern := c.node.Kernel
	hdrOff := c.hdrVA + vm.VirtAddr(hdrLen) // separate request header slot
	if err := kern.WriteBytes(hdrOff, encHdr(kind, seq, block, c.t.LocalEP())); err != nil {
		return err
	}
	v := append(core.Vector{core.KernelSeg(kern, hdrOff, hdrLen)}, data...)
	_, err := c.t.Send(p, c.server, c.serverEP, seq<<1|1, v)
	return err
}

// Device adapts the client to kernel.FileSystem: a filesystem holding
// the single file "disk" of the device's size, so the VFS page cache
// sits on top exactly as it would on a block special file.
type Device struct {
	cl *Client
}

// NewDevice wraps a client for mounting.
func NewDevice(cl *Client) *Device { return &Device{cl: cl} }

const diskIno kernel.InodeID = 2

// FSName implements kernel.FileSystem.
func (d *Device) FSName() string { return "nbd" }

// Root implements kernel.FileSystem.
func (d *Device) Root() kernel.InodeID { return 1 }

func (d *Device) rootAttr() kernel.Attr {
	return kernel.Attr{Ino: 1, Kind: kernel.Directory, Version: 1}
}

func (d *Device) diskAttr() kernel.Attr {
	return kernel.Attr{
		Ino: diskIno, Kind: kernel.RegularFile,
		Size: int64(d.cl.NumBlocks()) * BlockSize, Version: 1,
	}
}

// Lookup implements kernel.FileSystem.
func (d *Device) Lookup(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	if dir != 1 {
		return kernel.Attr{}, kernel.ErrNotDir
	}
	if name != "disk" {
		return kernel.Attr{}, kernel.ErrNotFound
	}
	return d.diskAttr(), nil
}

// Getattr implements kernel.FileSystem.
func (d *Device) Getattr(p *sim.Proc, ino kernel.InodeID) (kernel.Attr, error) {
	switch ino {
	case 1:
		return d.rootAttr(), nil
	case diskIno:
		return d.diskAttr(), nil
	}
	return kernel.Attr{}, kernel.ErrNotFound
}

// Readdir implements kernel.FileSystem.
func (d *Device) Readdir(p *sim.Proc, dir kernel.InodeID) ([]kernel.DirEntry, error) {
	if dir != 1 {
		return nil, kernel.ErrNotDir
	}
	return []kernel.DirEntry{{Name: "disk", Ino: diskIno, Kind: kernel.RegularFile}}, nil
}

// Create implements kernel.FileSystem (devices hold no new files).
func (d *Device) Create(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return kernel.Attr{}, kernel.ErrExists
}

// Mkdir implements kernel.FileSystem.
func (d *Device) Mkdir(p *sim.Proc, dir kernel.InodeID, name string) (kernel.Attr, error) {
	return kernel.Attr{}, kernel.ErrExists
}

// Unlink implements kernel.FileSystem.
func (d *Device) Unlink(p *sim.Proc, dir kernel.InodeID, name string) error {
	return kernel.ErrNotFound
}

// Rmdir implements kernel.FileSystem.
func (d *Device) Rmdir(p *sim.Proc, dir kernel.InodeID, name string) error {
	return kernel.ErrNotFound
}

// Truncate implements kernel.FileSystem (fixed-size device).
func (d *Device) Truncate(p *sim.Proc, ino kernel.InodeID, size int64) error {
	return kernel.ErrBadOffset
}

// ReadPage implements kernel.FileSystem: one block read, zero-copy
// into the page-cache frame.
func (d *Device) ReadPage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	if idx >= int64(d.cl.NumBlocks()) {
		return 0, nil
	}
	if err := d.cl.ReadBlock(p, idx, frame); err != nil {
		return 0, err
	}
	return BlockSize, nil
}

// WritePage implements kernel.FileSystem.
func (d *Device) WritePage(p *sim.Proc, ino kernel.InodeID, idx int64, frame *mem.Frame, n int) error {
	if ino != diskIno {
		return kernel.ErrNotFound
	}
	if idx >= int64(d.cl.NumBlocks()) {
		return kernel.ErrBadOffset
	}
	return d.cl.WriteBlock(p, idx, frame, n)
}

// ReadDirect implements kernel.FileSystem: block-aligned direct reads
// assembled from block RPCs through a bounce frame.
func (d *Device) ReadDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	n := v.TotalLen()
	size := int64(d.cl.NumBlocks()) * BlockSize
	if off >= size {
		return 0, nil
	}
	if int64(n) > size-off {
		n = int(size - off)
	}
	bounce, err := d.cl.node.Mem.AllocFrame()
	if err != nil {
		return 0, err
	}
	defer d.cl.node.Mem.Put(bounce)
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	done := 0
	for done < n {
		idx := (off + int64(done)) / BlockSize
		bOff := int((off + int64(done)) % BlockSize)
		chunk := BlockSize - bOff
		if chunk > n-done {
			chunk = n - done
		}
		if err := d.cl.ReadBlock(p, idx, bounce); err != nil {
			return done, err
		}
		d.cl.node.CPU.Copy(p, chunk)
		d.cl.node.Mem.Scatter(slice(xs, done, chunk), bounce.Data()[bOff:bOff+chunk])
		done += chunk
	}
	return done, nil
}

// WriteDirect implements kernel.FileSystem.
func (d *Device) WriteDirect(p *sim.Proc, ino kernel.InodeID, off int64, v core.Vector) (int, error) {
	if ino != diskIno {
		return 0, kernel.ErrNotFound
	}
	n := v.TotalLen()
	size := int64(d.cl.NumBlocks()) * BlockSize
	if off >= size || int64(n) > size-off {
		return 0, kernel.ErrBadOffset
	}
	bounce, err := d.cl.node.Mem.AllocFrame()
	if err != nil {
		return 0, err
	}
	defer d.cl.node.Mem.Put(bounce)
	xs, err := v.Extents()
	if err != nil {
		return 0, err
	}
	done := 0
	for done < n {
		idx := (off + int64(done)) / BlockSize
		bOff := int((off + int64(done)) % BlockSize)
		chunk := BlockSize - bOff
		if chunk > n-done {
			chunk = n - done
		}
		if bOff != 0 || chunk != BlockSize {
			// Read-modify-write for partial blocks.
			if err := d.cl.ReadBlock(p, idx, bounce); err != nil {
				return done, err
			}
		}
		data := d.cl.node.Mem.Gather(slice(xs, done, chunk))
		d.cl.node.CPU.Copy(p, chunk)
		copy(bounce.Data()[bOff:], data)
		if err := d.cl.WriteBlock(p, idx, bounce, BlockSize); err != nil {
			return done, err
		}
		done += chunk
	}
	return done, nil
}

// slice extracts [off, off+n) of an extent list.
func slice(xs []mem.Extent, off, n int) []mem.Extent {
	var out []mem.Extent
	for _, x := range xs {
		if n == 0 {
			break
		}
		if off >= x.Len {
			off -= x.Len
			continue
		}
		take := x.Len - off
		if take > n {
			take = n
		}
		out = append(out, mem.Extent{Addr: x.Addr + mem.PhysAddr(off), Len: take})
		n -= take
		off = 0
	}
	return out
}

var _ kernel.FileSystem = (*Device)(nil)
