package nbd_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/nbd"
	"repro/internal/sim"
	"repro/internal/vm"
)

type rig struct {
	env            *sim.Engine
	client, server *hw.Node
	srv            *nbd.Server
	cl             *nbd.Client
}

func newRig(t *testing.T, blocks int) *rig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &rig{env: env}
	r.client, r.server = c.AddNode("client"), c.AddNode("server")
	var err error
	if r.srv, err = nbd.NewServer(r.server, blocks); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.ServeMX(mx.Attach(r.server), 1, 1); err != nil {
		t.Fatal(err)
	}
	if r.cl, err = nbd.NewClient(mx.Attach(r.client), 2, r.server.ID, 1, blocks); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

func TestBlockRoundtrip(t *testing.T) {
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		in, _ := r.client.Mem.AllocFrame()
		for i := range out.Data() {
			out.Data()[i] = byte(i * 17)
		}
		if err := r.cl.WriteBlock(p, 5, out, nbd.BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := r.cl.ReadBlock(p, 5, in); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in.Data(), out.Data()) {
			t.Fatal("block corrupted in flight")
		}
	})
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.client.Mem.AllocFrame()
		f.Data()[0] = 0xFF
		if err := r.cl.ReadBlock(p, 2, f); err != nil {
			t.Fatal(err)
		}
		for i, b := range f.Data() {
			if b != 0 {
				t.Fatalf("byte %d = %d on fresh block", i, b)
			}
		}
	})
}

func TestOutOfRangeBlock(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.client.Mem.AllocFrame()
		if err := r.cl.ReadBlock(p, 99, f); err == nil {
			t.Fatal("out-of-range read succeeded")
		}
		if err := r.cl.WriteBlock(p, 99, f, nbd.BlockSize); err == nil {
			t.Fatal("out-of-range write succeeded")
		}
	})
}

func TestDeviceMountedThroughVFS(t *testing.T) {
	// The paper's §6 scenario: the device behind the page cache.
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/dev/nbd0", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")

		f, err := osys.Open(p, "/dev/nbd0/disk", 0)
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != 64*nbd.BlockSize {
			t.Fatalf("device size %d", f.Size())
		}
		data := make([]byte, 5*nbd.BlockSize+123)
		for i := range data {
			data[i] = byte(i * 29)
		}
		as.WriteBytes(buf, data)
		if n, err := f.WriteAt(p, as, buf, len(data), 3*nbd.BlockSize); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		if err := f.Fsync(p); err != nil {
			t.Fatal(err)
		}
		// Drop the cache so the read really hits the wire.
		a, _ := osys.Stat(p, "/dev/nbd0/disk")
		osys.PC.InvalidateInode(nbd.NewDevice(r.cl), a.Ino) // wrong fs ptr: no-op
		reads0 := r.srv.Reads.N
		n, err := f.ReadAt(p, as, buf, len(data), 3*nbd.BlockSize)
		if err != nil || n != len(data) {
			t.Fatalf("read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, n)
		if !bytes.Equal(got, data) {
			t.Fatal("device roundtrip corrupted")
		}
		_ = reads0
		f.Close(p)
	})
}

func TestDeviceDirectIO(t *testing.T) {
	r := newRig(t, 32)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/dev/nbd0", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")
		f, err := osys.Open(p, "/dev/nbd0/disk", kernel.ODirect)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 3*nbd.BlockSize)
		for i := range data {
			data[i] = byte(i * 41)
		}
		as.WriteBytes(buf, data)
		// Unaligned offset: exercises the RMW path.
		if n, err := f.WriteAt(p, as, buf, len(data), 1000); err != nil || n != len(data) {
			t.Fatalf("direct write: %d %v", n, err)
		}
		zero := make([]byte, len(data))
		as.WriteBytes(buf, zero)
		if n, err := f.ReadAt(p, as, buf, len(data), 1000); err != nil || n != len(data) {
			t.Fatalf("direct read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, len(data))
		if !bytes.Equal(got, data) {
			t.Fatal("direct roundtrip corrupted")
		}
	})
}

func TestPageCacheAbsorbsRepeatedReads(t *testing.T) {
	// The paper's point: the NBD client interacts with the page cache
	// like a DFS client — repeated buffered reads must not hit the wire.
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		dev := nbd.NewDevice(r.cl)
		osys.Mount("/dev", dev)
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<16, "buf")
		f, _ := osys.Open(p, "/dev/disk", 0)
		f.ReadAt(p, as, buf, 8*nbd.BlockSize, 0)
		wire := r.cl.BlockReads.N
		for i := 0; i < 5; i++ {
			f.ReadAt(p, as, buf, 8*nbd.BlockSize, 0)
		}
		if r.cl.BlockReads.N != wire {
			t.Fatalf("repeated buffered reads hit the wire (%d → %d block reads)", wire, r.cl.BlockReads.N)
		}
	})
}

// Property: random block writes then reads match a reference model.
func TestBlockStoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		env := sim.NewEngine()
		c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		client, server := c.AddNode("c"), c.AddNode("s")
		srv, err := nbd.NewServer(server, 8)
		if err != nil {
			return false
		}
		if err := srv.ServeMX(mx.Attach(server), 1, 1); err != nil {
			return false
		}
		cl, err := nbd.NewClient(mx.Attach(client), 2, server.ID, 1, 8)
		if err != nil {
			return false
		}
		env.Spawn("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ref := make(map[int64][]byte)
			out, _ := client.Mem.AllocFrame()
			in, _ := client.Mem.AllocFrame()
			for op := 0; op < 20; op++ {
				blk := rng.Int63n(8)
				if rng.Intn(2) == 0 {
					rng.Read(out.Data())
					if err := cl.WriteBlock(p, blk, out, nbd.BlockSize); err != nil {
						ok = false
						return
					}
					ref[blk] = append([]byte(nil), out.Data()...)
				} else {
					if err := cl.ReadBlock(p, blk, in); err != nil {
						ok = false
						return
					}
					want := ref[blk]
					if want == nil {
						want = make([]byte, nbd.BlockSize)
					}
					if !bytes.Equal(in.Data(), want) {
						ok = false
						return
					}
				}
			}
		})
		env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Fatal(err)
	}
}

var _ = mem.PageSize
var _ = vm.PageSize

// TestWindowedBlockReads: with a widened window the client queues
// multiple block requests; contents must survive and the combined
// fetch must beat the synchronous per-block protocol.
func TestWindowedBlockReads(t *testing.T) {
	const blocks = 64
	fill := func(r *rig, p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		for i := 0; i < blocks; i++ {
			for j := range out.Data() {
				out.Data()[j] = byte(i + j*7)
			}
			if err := r.cl.WriteBlock(p, int64(i), out, nbd.BlockSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	read := func(window int) sim.Time {
		r := newRig(t, blocks)
		var elapsed sim.Time
		r.run(t, func(p *sim.Proc) {
			fill(r, p)
			if err := r.cl.SetWindow(window); err != nil {
				t.Fatal(err)
			}
			frames := make([]*mem.Frame, blocks)
			for i := range frames {
				frames[i], _ = r.client.Mem.AllocFrame()
			}
			t0 := p.Now()
			if err := r.cl.ReadBlocks(p, 0, frames); err != nil {
				t.Fatal(err)
			}
			elapsed = p.Now() - t0
			for i, f := range frames {
				for j, b := range f.Data() {
					if b != byte(i+j*7) {
						t.Fatalf("block %d byte %d corrupted under window %d", i, j, window)
					}
				}
			}
			if r.cl.InFlight() != 0 {
				t.Fatalf("window %d: %d requests still in flight", window, r.cl.InFlight())
			}
		})
		return elapsed
	}
	serial := read(1)
	windowed := read(8)
	if windowed >= serial {
		t.Errorf("window 8 read (%v) not faster than window 1 (%v)", windowed, serial)
	}
}

// TestDeviceCombinedPageReads: the mounted device fetches combined
// page ranges as pipelined block requests (PageRangeReader).
func TestDeviceCombinedPageReads(t *testing.T) {
	const blocks = 32
	r := newRig(t, blocks)
	r.run(t, func(p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		for i := 0; i < blocks; i++ {
			for j := range out.Data() {
				out.Data()[j] = byte(i ^ j)
			}
			if err := r.cl.WriteBlock(p, int64(i), out, nbd.BlockSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.cl.SetWindow(8); err != nil {
			t.Fatal(err)
		}
		osys := kernel.NewOS(r.client, 0)
		osys.SetReadChunkPages(8)
		osys.Mount("/dev", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(blocks*nbd.BlockSize, "buf")
		f, err := osys.Open(p, "/dev/disk", 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.ReadAt(p, as, buf, blocks*nbd.BlockSize, 0)
		if err != nil || n != blocks*nbd.BlockSize {
			t.Fatalf("read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, n)
		for i := 0; i < blocks; i++ {
			for j := 0; j < nbd.BlockSize; j++ {
				if got[i*nbd.BlockSize+j] != byte(i^j) {
					t.Fatalf("combined read corrupted block %d byte %d", i, j)
				}
			}
		}
	})
}
