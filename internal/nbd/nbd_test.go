package nbd_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/mx"
	"repro/internal/nbd"
	"repro/internal/sim"
	"repro/internal/vm"
)

type rig struct {
	env            *sim.Engine
	client, server *hw.Node
	srv            *nbd.Server
	cl             *nbd.Client
}

func newRig(t *testing.T, blocks int) *rig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &rig{env: env}
	r.client, r.server = c.AddNode("client"), c.AddNode("server")
	var err error
	if r.srv, err = nbd.NewServer(r.server, blocks); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.ServeMX(mx.Attach(r.server), 1, 1); err != nil {
		t.Fatal(err)
	}
	if r.cl, err = nbd.NewClient(mx.Attach(r.client), 2, r.server.ID, 1, blocks); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

func TestBlockRoundtrip(t *testing.T) {
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		in, _ := r.client.Mem.AllocFrame()
		for i := range out.Data() {
			out.Data()[i] = byte(i * 17)
		}
		if err := r.cl.WriteBlock(p, 5, out, nbd.BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := r.cl.ReadBlock(p, 5, in); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in.Data(), out.Data()) {
			t.Fatal("block corrupted in flight")
		}
	})
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.client.Mem.AllocFrame()
		f.Data()[0] = 0xFF
		if err := r.cl.ReadBlock(p, 2, f); err != nil {
			t.Fatal(err)
		}
		for i, b := range f.Data() {
			if b != 0 {
				t.Fatalf("byte %d = %d on fresh block", i, b)
			}
		}
	})
}

func TestOutOfRangeBlock(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.client.Mem.AllocFrame()
		if err := r.cl.ReadBlock(p, 99, f); err == nil {
			t.Fatal("out-of-range read succeeded")
		}
		if err := r.cl.WriteBlock(p, 99, f, nbd.BlockSize); err == nil {
			t.Fatal("out-of-range write succeeded")
		}
	})
}

func TestDeviceMountedThroughVFS(t *testing.T) {
	// The paper's §6 scenario: the device behind the page cache.
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/dev/nbd0", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")

		f, err := osys.Open(p, "/dev/nbd0/disk", 0)
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != 64*nbd.BlockSize {
			t.Fatalf("device size %d", f.Size())
		}
		data := make([]byte, 5*nbd.BlockSize+123)
		for i := range data {
			data[i] = byte(i * 29)
		}
		as.WriteBytes(buf, data)
		if n, err := f.WriteAt(p, as, buf, len(data), 3*nbd.BlockSize); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		if err := f.Fsync(p); err != nil {
			t.Fatal(err)
		}
		// Drop the cache so the read really hits the wire.
		a, _ := osys.Stat(p, "/dev/nbd0/disk")
		osys.PC.InvalidateInode(nbd.NewDevice(r.cl), a.Ino) // wrong fs ptr: no-op
		reads0 := r.srv.Reads.N
		n, err := f.ReadAt(p, as, buf, len(data), 3*nbd.BlockSize)
		if err != nil || n != len(data) {
			t.Fatalf("read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, n)
		if !bytes.Equal(got, data) {
			t.Fatal("device roundtrip corrupted")
		}
		_ = reads0
		f.Close(p)
	})
}

func TestDeviceDirectIO(t *testing.T) {
	r := newRig(t, 32)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		osys.Mount("/dev/nbd0", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<20, "buf")
		f, err := osys.Open(p, "/dev/nbd0/disk", kernel.ODirect)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 3*nbd.BlockSize)
		for i := range data {
			data[i] = byte(i * 41)
		}
		as.WriteBytes(buf, data)
		// Unaligned offset: exercises the RMW path.
		if n, err := f.WriteAt(p, as, buf, len(data), 1000); err != nil || n != len(data) {
			t.Fatalf("direct write: %d %v", n, err)
		}
		zero := make([]byte, len(data))
		as.WriteBytes(buf, zero)
		if n, err := f.ReadAt(p, as, buf, len(data), 1000); err != nil || n != len(data) {
			t.Fatalf("direct read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, len(data))
		if !bytes.Equal(got, data) {
			t.Fatal("direct roundtrip corrupted")
		}
	})
}

func TestPageCacheAbsorbsRepeatedReads(t *testing.T) {
	// The paper's point: the NBD client interacts with the page cache
	// like a DFS client — repeated buffered reads must not hit the wire.
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		dev := nbd.NewDevice(r.cl)
		osys.Mount("/dev", dev)
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<16, "buf")
		f, _ := osys.Open(p, "/dev/disk", 0)
		f.ReadAt(p, as, buf, 8*nbd.BlockSize, 0)
		wire := r.cl.BlockReads.N
		for i := 0; i < 5; i++ {
			f.ReadAt(p, as, buf, 8*nbd.BlockSize, 0)
		}
		if r.cl.BlockReads.N != wire {
			t.Fatalf("repeated buffered reads hit the wire (%d → %d block reads)", wire, r.cl.BlockReads.N)
		}
	})
}

// Property: random block writes then reads match a reference model.
func TestBlockStoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		env := sim.NewEngine()
		c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
		client, server := c.AddNode("c"), c.AddNode("s")
		srv, err := nbd.NewServer(server, 8)
		if err != nil {
			return false
		}
		if err := srv.ServeMX(mx.Attach(server), 1, 1); err != nil {
			return false
		}
		cl, err := nbd.NewClient(mx.Attach(client), 2, server.ID, 1, 8)
		if err != nil {
			return false
		}
		env.Spawn("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			ref := make(map[int64][]byte)
			out, _ := client.Mem.AllocFrame()
			in, _ := client.Mem.AllocFrame()
			for op := 0; op < 20; op++ {
				blk := rng.Int63n(8)
				if rng.Intn(2) == 0 {
					rng.Read(out.Data())
					if err := cl.WriteBlock(p, blk, out, nbd.BlockSize); err != nil {
						ok = false
						return
					}
					ref[blk] = append([]byte(nil), out.Data()...)
				} else {
					if err := cl.ReadBlock(p, blk, in); err != nil {
						ok = false
						return
					}
					want := ref[blk]
					if want == nil {
						want = make([]byte, nbd.BlockSize)
					}
					if !bytes.Equal(in.Data(), want) {
						ok = false
						return
					}
				}
			}
		})
		env.Run(0)
		return ok
	}
	// Fixed seed: the repo's determinism claim extends to test inputs
	// (Go >= 1.20 auto-seeds the global source otherwise).
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Fatal(err)
	}
}

var _ = mem.PageSize
var _ = vm.PageSize

// TestWindowedBlockReads: with a widened window the client queues
// multiple block requests; contents must survive and the combined
// fetch must beat the synchronous per-block protocol.
func TestWindowedBlockReads(t *testing.T) {
	const blocks = 64
	fill := func(r *rig, p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		for i := 0; i < blocks; i++ {
			for j := range out.Data() {
				out.Data()[j] = byte(i + j*7)
			}
			if err := r.cl.WriteBlock(p, int64(i), out, nbd.BlockSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	read := func(window int) sim.Time {
		r := newRig(t, blocks)
		var elapsed sim.Time
		r.run(t, func(p *sim.Proc) {
			fill(r, p)
			if err := r.cl.SetWindow(window); err != nil {
				t.Fatal(err)
			}
			frames := make([]*mem.Frame, blocks)
			for i := range frames {
				frames[i], _ = r.client.Mem.AllocFrame()
			}
			t0 := p.Now()
			if err := r.cl.ReadBlocks(p, 0, frames); err != nil {
				t.Fatal(err)
			}
			elapsed = p.Now() - t0
			for i, f := range frames {
				for j, b := range f.Data() {
					if b != byte(i+j*7) {
						t.Fatalf("block %d byte %d corrupted under window %d", i, j, window)
					}
				}
			}
			if r.cl.InFlight() != 0 {
				t.Fatalf("window %d: %d requests still in flight", window, r.cl.InFlight())
			}
		})
		return elapsed
	}
	serial := read(1)
	windowed := read(8)
	if windowed >= serial {
		t.Errorf("window 8 read (%v) not faster than window 1 (%v)", windowed, serial)
	}
}

// TestDeviceCombinedPageReads: the mounted device fetches combined
// page ranges as pipelined block requests (PageRangeReader).
func TestDeviceCombinedPageReads(t *testing.T) {
	const blocks = 32
	r := newRig(t, blocks)
	r.run(t, func(p *sim.Proc) {
		out, _ := r.client.Mem.AllocFrame()
		for i := 0; i < blocks; i++ {
			for j := range out.Data() {
				out.Data()[j] = byte(i ^ j)
			}
			if err := r.cl.WriteBlock(p, int64(i), out, nbd.BlockSize); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.cl.SetWindow(8); err != nil {
			t.Fatal(err)
		}
		osys := kernel.NewOS(r.client, 0)
		osys.SetReadChunkPages(8)
		osys.Mount("/dev", nbd.NewDevice(r.cl))
		as := r.client.NewUserSpace("app")
		buf, _ := as.Mmap(blocks*nbd.BlockSize, "buf")
		f, err := osys.Open(p, "/dev/disk", 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.ReadAt(p, as, buf, blocks*nbd.BlockSize, 0)
		if err != nil || n != blocks*nbd.BlockSize {
			t.Fatalf("read: %d %v", n, err)
		}
		got, _ := as.ReadBytes(buf, n)
		for i := 0; i < blocks; i++ {
			for j := 0; j < nbd.BlockSize; j++ {
				if got[i*nbd.BlockSize+j] != byte(i^j) {
					t.Fatalf("combined read corrupted block %d byte %d", i, j)
				}
			}
		}
	})
}

// stripedRig builds S servers and one client node holding one Client
// per server (distinct endpoints), assembled into a striped Device.
type stripedRig struct {
	env     *sim.Engine
	client  *hw.Node
	servers []*hw.Node
	cls     []*nbd.Client
	dev     *nbd.Device
}

func newStripedRig(t *testing.T, nServers, blocks, window int) *stripedRig {
	t.Helper()
	env := sim.NewEngine()
	c := hw.NewCluster(env, hw.DefaultParams(), hw.PCIXD)
	r := &stripedRig{env: env, client: c.AddNode("client")}
	clientMX := mx.Attach(r.client)
	for i := 0; i < nServers; i++ {
		n := c.AddNode("server")
		srv, err := nbd.NewServer(n, blocks)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.ServeMX(mx.Attach(n), 1, 2); err != nil {
			t.Fatal(err)
		}
		cl, err := nbd.NewClient(clientMX, uint8(10+i), n.ID, 1, blocks)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.SetWindow(window); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, n)
		r.cls = append(r.cls, cl)
	}
	var err error
	if r.dev, err = nbd.NewStripedDevice(r.cls); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *stripedRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		body(p)
		done = true
	})
	r.env.Run(0)
	if !done {
		t.Fatal("deadlock")
	}
}

// TestStripedDeviceRoundtrip writes a multi-block pattern through the
// striped device's VFS mount, reads it back buffered and direct, and
// verifies each backend served only its own blocks.
func TestStripedDeviceRoundtrip(t *testing.T) {
	const servers, blocks = 3, 32
	r := newStripedRig(t, servers, blocks, 4)
	r.run(t, func(p *sim.Proc) {
		osys := kernel.NewOS(r.client, 0)
		osys.SetReadChunkPages(8)
		osys.Mount("/dev", r.dev)
		as := r.client.NewUserSpace("app")
		const n = 20 * nbd.BlockSize
		va, err := as.Mmap(n, "buf")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*13 + 7)
		}
		if err := as.WriteBytes(va, data); err != nil {
			t.Fatal(err)
		}
		f, err := osys.Open(p, "/dev/disk", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := f.WriteAt(p, as, va, n, 0); err != nil || got != n {
			t.Fatalf("write: %d %v", got, err)
		}
		if err := f.Fsync(p); err != nil {
			t.Fatal(err)
		}
		rva, _ := as.Mmap(n, "rbuf")
		if got, err := f.ReadAt(p, as, rva, n, 0); err != nil || got != n {
			t.Fatalf("buffered read: %d %v", got, err)
		}
		got, _ := as.ReadBytes(rva, n)
		if !bytes.Equal(got, data) {
			t.Fatal("buffered striped roundtrip corrupted data")
		}
		// Direct path too (bypasses the cache, per-block RPCs).
		fd, err := osys.Open(p, "/dev/disk", kernel.ODirect)
		if err != nil {
			t.Fatal(err)
		}
		dva, _ := as.Mmap(n, "dbuf")
		if got, err := fd.ReadAt(p, as, dva, n-2*nbd.BlockSize, 3*nbd.BlockSize/2); err == nil {
			raw, _ := as.ReadBytes(dva, got)
			if !bytes.Equal(raw, data[3*nbd.BlockSize/2:3*nbd.BlockSize/2+got]) {
				t.Fatal("direct striped read corrupted data")
			}
		} else {
			t.Fatal(err)
		}
		// Placement: every client saw only its share of the block reads.
		for i, cl := range r.cls {
			if cl.BlockReads.N == 0 || cl.BlockWrites.N == 0 {
				t.Errorf("backend %d served no traffic (reads=%d writes=%d)", i, cl.BlockReads.N, cl.BlockWrites.N)
			}
		}
	})
}

// TestStripedDeviceOneClientMatchesPlain: a one-client striped device
// must behave request-for-request like NewDevice over the same client
// — same virtual finish time for the same workload.
func TestStripedDeviceOneClientMatchesPlain(t *testing.T) {
	workload := func(striped bool) sim.Time {
		r := newRig(t, 64)
		if err := r.cl.SetWindow(4); err != nil {
			t.Fatal(err)
		}
		var end sim.Time
		r.run(t, func(p *sim.Proc) {
			dev := nbd.NewDevice(r.cl)
			if striped {
				var err error
				if dev, err = nbd.NewStripedDevice([]*nbd.Client{r.cl}); err != nil {
					t.Fatal(err)
				}
			}
			osys := kernel.NewOS(r.client, 0)
			osys.SetReadChunkPages(4)
			osys.Mount("/dev", dev)
			as := r.client.NewUserSpace("app")
			const n = 48 * nbd.BlockSize
			va, _ := as.Mmap(n, "buf")
			f, err := osys.Open(p, "/dev/disk", 0)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := f.WriteAt(p, as, va, n, 0); err != nil || got != n {
				t.Fatalf("write: %d %v", got, err)
			}
			if err := f.Fsync(p); err != nil {
				t.Fatal(err)
			}
			if got, err := f.ReadAt(p, as, va, n, 0); err != nil || got != n {
				t.Fatalf("read: %d %v", got, err)
			}
			end = p.Now()
		})
		return end
	}
	plain := workload(false)
	striped := workload(true)
	if plain != striped {
		t.Errorf("one-client striped device finished at %v, plain at %v", striped, plain)
	}
}
