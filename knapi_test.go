package knapi

import (
	"bytes"
	"testing"
	"time"
)

// TestFacadeEndToEnd drives the whole stack through the public surface
// only: cluster construction, MX messaging, ORFS mount, socket echo.
func TestFacadeEndToEnd(t *testing.T) {
	s := NewSim(PCIXD)
	client := s.AddNode("client")
	server := s.AddNode("server")

	// File server over the facade.
	backing := NewMemFS("backing", server, 0)
	srv := NewFileServer(server, backing)
	if _, err := srv.ServeMX(AttachMX(server), 1, 1); err != nil {
		t.Fatal(err)
	}
	mxC := AttachMX(client)

	okFS := false
	s.Spawn("fs-user", func(p *Proc) {
		cl, err := NewMXClient(mxC, 2, true, client.Kernel, server.ID, 1)
		if err != nil {
			t.Error(err)
			return
		}
		osys := NewOS(client, 0)
		osys.Mount("/mnt", NewORFS("orfs", cl))
		as := client.NewUserSpace("app")
		buf, _ := as.Mmap(1<<18, "buf")
		f, err := osys.Open(p, "/mnt/hello.txt", OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		msg := []byte("facade roundtrip")
		as.WriteBytes(buf, msg)
		if _, err := f.Write(p, as, buf, len(msg)); err != nil {
			t.Error(err)
			return
		}
		f.Close(p)
		g, _ := osys.Open(p, "/mnt/hello.txt", ODirect)
		n, err := g.ReadAt(p, as, buf, len(msg), 0)
		if err != nil || n != len(msg) {
			t.Errorf("read: %d %v", n, err)
			return
		}
		got, _ := as.ReadBytes(buf, n)
		if !bytes.Equal(got, msg) {
			t.Error("facade roundtrip corrupted")
			return
		}
		okFS = true
	})

	end := s.Run()
	if !okFS {
		t.Fatal("filesystem path did not complete")
	}
	if end <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// TestFacadeDeterminism: two identical simulations end at the same
// virtual instant, byte for byte.
func TestFacadeDeterminism(t *testing.T) {
	run := func() Time {
		s := NewSim(PCIXE)
		a, b := s.AddNode("a"), s.AddNode("b")
		sa, err := NewSocketsMX(AttachMX(a), 1)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSocketsMX(AttachMX(b), 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Spawn("srv", func(p *Proc) {
			l, _ := sb.Listen(9)
			c, _ := l.Accept(p)
			as := b.NewUserSpace("x")
			va, _ := as.Mmap(1<<16, "buf")
			for i := 0; i < 5; i++ {
				c.Recv(p, as, va, 1<<16)
				c.Send(p, as, va, 4096)
			}
		})
		s.Spawn("cli", func(p *Proc) {
			p.Sleep(5 * time.Microsecond)
			c, err := sa.Dial(p, int(b.ID), 9)
			if err != nil {
				t.Error(err)
				return
			}
			as := a.NewUserSpace("x")
			va, _ := as.Mmap(1<<16, "buf")
			for i := 0; i < 5; i++ {
				c.Send(p, as, va, 4096)
				c.Recv(p, as, va, 1<<16)
			}
			c.Close(p)
		})
		return s.Run()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("non-deterministic: %v vs %v", t1, t2)
	}
}

// TestZeroCopySavesCPU verifies the paper's motivation (§2.1): with the
// physical-address path the client CPU does not copy file data, leaving
// cycles for computation; the staging path burns them.
func TestZeroCopySavesCPU(t *testing.T) {
	measure := func(noPhys bool) int64 {
		s := NewSim(PCIXD)
		client := s.AddNode("client")
		server := s.AddNode("server")
		backing := NewMemFS("backing", server, 0)
		srv := NewFileServer(server, backing)
		if _, err := srv.ServeGM(AttachGM(server), 1); err != nil {
			t.Fatal(err)
		}
		gmC := AttachGM(client)
		var copied int64 = -1
		s.Spawn("app", func(p *Proc) {
			cl, err := NewGMClient(p, gmC, 2, true, client.Kernel, server.ID, 1, 4096)
			if err != nil {
				t.Error(err)
				return
			}
			if noPhys {
				if err := cl.DisablePhysicalAPI(p); err != nil {
					t.Error(err)
					return
				}
			}
			osys := NewOS(client, 0)
			osys.Mount("/mnt", NewORFS("orfs", cl))
			// Seed server-side.
			attr, _ := backing.Create(p, backing.Root(), "data")
			kva, _ := server.Kernel.Mmap(1<<20, "seed")
			backing.WriteDirect(p, attr.Ino, 0, Of(KernelSeg(server.Kernel, kva, 1<<20)))
			as := client.NewUserSpace("app")
			buf, _ := as.Mmap(1<<20, "buf")
			f, err := osys.Open(p, "/mnt/data", 0)
			if err != nil {
				t.Error(err)
				return
			}
			before := client.CPU.CopyStats.Bytes
			f.ReadAt(p, as, buf, 1<<20, 0)
			copied = client.CPU.CopyStats.Bytes - before
		})
		s.Run()
		if copied < 0 {
			t.Fatal("measurement did not run")
		}
		return copied
	}
	phys := measure(false)
	staged := measure(true)
	// Both pay the mandatory page-cache→application copy (1MB); the
	// staging path additionally copies every byte once more.
	if staged < phys+1<<19 {
		t.Fatalf("staging path copied %d bytes vs %d with the physical API — expected ≥0.5MB more",
			staged, phys)
	}
}

// TestDefaultParamsAnchors pins the calibration constants the paper
// states outright, so accidental retuning is caught.
func TestDefaultParamsAnchors(t *testing.T) {
	p := DefaultParams()
	if p.RegPerPage != 3*time.Microsecond {
		t.Errorf("RegPerPage = %v, paper says 3µs", p.RegPerPage)
	}
	if p.DeregBase != 200*time.Microsecond {
		t.Errorf("DeregBase = %v, paper says 200µs", p.DeregBase)
	}
	if p.Syscall != 400*time.Nanosecond {
		t.Errorf("Syscall = %v, paper says ≈400ns", p.Syscall)
	}
	if p.LinkBandwidthXD != 250e6 || p.LinkBandwidthXE != 500e6 {
		t.Errorf("link bandwidths %v/%v, paper says 250/500 MB/s",
			p.LinkBandwidthXD, p.LinkBandwidthXE)
	}
	if p.MXSmallMax != 128 || p.MXMediumMax != 32*1024 {
		t.Errorf("MX regime bounds %d/%d, paper says 128B/32KB", p.MXSmallMax, p.MXMediumMax)
	}
}

// TestFacadeSurface exercises the remaining facade constructors.
func TestFacadeSurface(t *testing.T) {
	s := NewSimWithParams(PCIXD, DefaultParams())
	node := s.AddNode("n")
	peer := s.AddNode("peer")
	g := AttachGM(node)
	tcp := NewSocketsTCP(node)
	_ = NewSocketsTCP(peer)
	if tcp == nil {
		t.Fatal("tcp stack nil")
	}
	srv, err := NewNBDServer(peer, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeMX(AttachMX(peer), 1, 1); err != nil {
		t.Fatal(err)
	}
	ran := false
	s.Spawn("t", func(p *Proc) {
		port, err := g.OpenPort(1, true)
		if err != nil {
			t.Error(err)
			return
		}
		cache := NewRegCache(port, 32)
		as := node.NewUserSpace("u")
		va, _ := as.Mmap(PageSize, "b")
		if hit, err := cache.Acquire(p, as, va, PageSize); hit || err != nil {
			t.Errorf("acquire: %v %v", hit, err)
		}
		ncl, err := NewNBDClient(AttachMX(node), 2, peer.ID, 1, 8)
		if err != nil {
			t.Error(err)
			return
		}
		dev := NewNBDDevice(ncl)
		if dev.Root() != 1 {
			t.Error("device root")
		}
		fr, _ := node.Mem.AllocFrame()
		if err := ncl.ReadBlock(p, 0, fr); err != nil {
			t.Error(err)
		}
		// ORFA facade over a local... needs a server; just construct.
		lib := NewORFA(nil, as)
		if lib == nil {
			t.Error("orfa nil")
		}
		ran = true
	})
	// RunFor exercises the bounded run.
	s.RunFor(1)
	s.Run()
	if !ran {
		t.Fatal("facade body did not run")
	}
	if got := NetpipeSizes(4); len(got) != 3 {
		t.Errorf("NetpipeSizes(4) = %v", got)
	}
	if DefaultConfig().Iters <= 0 {
		t.Error("DefaultConfig iters")
	}
}
