// Package knapi is the public facade of this repository: a Go
// reproduction of "An Efficient Network API for in-Kernel Applications
// in Clusters" (Goglin, Glück, Vicat-Blanc Primet — IEEE Cluster 2005,
// INRIA RR-5561).
//
// The library simulates, deterministically and with real data
// movement, the paper's whole experimental platform: Myrinet
// PCI-XD/PCI-XE networks, the GM and MX programming interfaces
// (including the paper's kernel-interface contributions), the Linux
// kernel pieces in-kernel applications live in (virtual memory with
// VMA SPY, page cache, VFS), the GMKRC registration cache, the
// ORFA/ORFS remote file system, the SOCKETS-GM/SOCKETS-MX zero-copy
// socket layers, and a network block device.
//
// # Quick start
//
//	s := knapi.NewSim(knapi.PCIXD)
//	a, b := s.AddNode("a"), s.AddNode("b")
//	mxA, mxB := knapi.AttachMX(a), knapi.AttachMX(b)
//	... open endpoints, exchange messages (see examples/quickstart) ...
//	s.Run()
//
// Everything happens in virtual time on a discrete-event engine; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every figure and table of the paper.
package knapi

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/figures"
	"repro/internal/gm"
	"repro/internal/gmkrc"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/mx"
	"repro/internal/nbd"
	"repro/internal/netpipe"
	"repro/internal/orfa"
	"repro/internal/orfs"
	"repro/internal/rfsrv"
	"repro/internal/sim"
	"repro/internal/sockets"
	"repro/internal/vm"
)

// Link models (Myrinet card generations).
const (
	// PCIXD is the 250 MB/s card of the paper's §3–§5.2 testbed.
	PCIXD = hw.PCIXD
	// PCIXE is the 500 MB/s two-link card of §5.3.
	PCIXE = hw.PCIXE
)

// Re-exported core types. The simulation engine, hardware and protocol
// models live in internal packages; these aliases are the supported
// surface.
type (
	// Sim-level types.
	Engine = sim.Engine
	Proc   = sim.Proc
	Time   = sim.Time

	// Hardware.
	Node      = hw.Node
	NodeID    = hw.NodeID
	Params    = hw.Params
	LinkModel = hw.LinkModel

	// Memory and address spaces.
	Memory       = mem.Memory
	Frame        = mem.Frame
	PhysAddr     = mem.PhysAddr
	Extent       = mem.Extent
	AddressSpace = vm.AddressSpace
	VirtAddr     = vm.VirtAddr

	// The paper's API abstractions.
	AddrType = core.AddrType
	Segment  = core.Segment
	Vector   = core.Vector
	Match    = core.Match

	// Drivers.
	GM         = gm.GM
	GMPort     = gm.Port
	GMEvent    = gm.Event
	MX         = mx.MX
	MXEndpoint = mx.Endpoint
	MXRequest  = mx.Request
	MXStatus   = mx.Status
	MXOption   = mx.Option
	RegCache   = gmkrc.Cache

	// OS substrate.
	OS         = kernel.OS
	File       = kernel.File
	FileSystem = kernel.FileSystem
	Attr       = kernel.Attr
	DirEntry   = kernel.DirEntry
	OpenFlag   = kernel.OpenFlag
	MemFS      = memfs.FS

	// Remote file access.
	FileServer = rfsrv.Server
	FSClient   = rfsrv.Client
	MXClient   = rfsrv.MXClient
	GMClient   = rfsrv.GMClient
	ORFS       = orfs.FS
	ORFA       = orfa.Lib

	// Pipelined sessions: a sliding window of in-flight requests over
	// a protocol client (Session satisfies FSClient; window 1 is the
	// paper's synchronous protocol).
	FSSession       = rfsrv.Session
	FSPending       = rfsrv.Pending
	FSPendingOp     = rfsrv.PendingOp
	FSAsync         = rfsrv.Async
	ServerSession   = rfsrv.ClientSession
	NBDPendingBlock = nbd.PendingBlock

	// Striped cluster: file data sharded round-robin across several
	// servers, one session per server (Cluster satisfies FSClient and
	// FSAsync; one server degenerates to the plain session). File
	// sizes are kept coherent across client nodes by the size-epoch
	// protocol (DESIGN.md §9): the home server is the size authority,
	// clients hold validated (size, epoch) caches, and OpSetSize —
	// exported on the cluster as Meta truncates and SetFileSize —
	// reconciles every server's local size.
	FSCluster = rfsrv.Cluster

	// Per-file layout classes (DESIGN.md §10): how a cluster places a
	// file's bytes. SetLayoutPolicy on the cluster turns the machinery
	// on; it is inert on a one-server cluster.
	FSLayoutClass  = rfsrv.LayoutClass
	FSLayoutPolicy = rfsrv.LayoutPolicy

	// Rename capability (DESIGN.md §11): every protocol client renames;
	// on a sharded cluster a cross-owner rename is the multi-phase
	// protocol whose interrupted runs surface as *FSRenameInDoubtError.
	FSRenamer            = rfsrv.Renamer
	FSRenameInDoubtError = rfsrv.RenameInDoubtError

	// Elastic membership (DESIGN.md §13): the shared epoch-stamped
	// view that fences clusters during a live Join/Retire/Bounce.
	// Cluster.ShareView publishes one; AttachView subscribes other
	// clusters, which adopt the new members slice at their next
	// operation.
	FSMemberView = rfsrv.MemberView

	// Sockets.
	Conn     = sockets.Conn
	Listener = sockets.Listener
	Stack    = sockets.Stack
	SockPort = sockets.Port

	// Block device.
	NBDServer = nbd.Server
	NBDClient = nbd.Client
	NBDDevice = nbd.Device

	// The unified fabric (see DESIGN.md §3): one transport interface
	// over GM, MX and the socket stacks, plus the shared
	// registered-buffer pool.
	Fabric       = fabric.Transport
	FabricCaps   = fabric.Caps
	FabricOp     = fabric.Op
	FabricStatus = fabric.Status
	BufferPool   = fabric.Pool
	PoolBuffer   = fabric.Buffer

	// Measurement.
	Transport = netpipe.Transport
	Point     = netpipe.Point
	Series    = netpipe.Series
	Runner    = netpipe.Runner
	Figure    = figures.Figure
	TableData = figures.Table
	Config    = figures.Config
)

// Address types for Vector segments (§4.2's three kinds).
const (
	UserVirtual   = core.UserVirtual
	KernelVirtual = core.KernelVirtual
	Physical      = core.Physical
)

// File open flags.
const (
	ORDWR   = kernel.ORDWR
	OCreate = kernel.OCreate
	OTrunc  = kernel.OTrunc
	ODirect = kernel.ODirect
)

// PageSize is the simulated hosts' page size (4 KB).
const PageSize = mem.PageSize

// Segment and match constructors.
var (
	UserSeg   = core.UserSeg
	KernelSeg = core.KernelSeg
	PhysSeg   = core.PhysSeg
	Of        = core.Of
	Exact     = core.Exact
	MatchAll  = core.MatchAll
)

// MX endpoint options (the Fig 6 copy-removal modes).
var (
	WithNoSendCopy = mx.WithNoSendCopy
	WithNoRecvCopy = mx.WithNoRecvCopy
)

// Sim is a simulated cluster: an engine, a parameter set and a fabric.
type Sim struct {
	Env     *sim.Engine
	Cluster *hw.Cluster
}

// NewSim creates a cluster simulation with the calibrated default
// parameters and the given link model.
func NewSim(model LinkModel) *Sim {
	env := sim.NewEngine()
	return &Sim{Env: env, Cluster: hw.NewCluster(env, hw.DefaultParams(), model)}
}

// NewSimWithParams creates a cluster with custom parameters.
func NewSimWithParams(model LinkModel, p *Params) *Sim {
	env := sim.NewEngine()
	return &Sim{Env: env, Cluster: hw.NewCluster(env, p, model)}
}

// AddNode adds a host to the cluster.
func (s *Sim) AddNode(name string) *Node { return s.Cluster.AddNode(name) }

// Spawn starts a simulated process.
func (s *Sim) Spawn(name string, body func(p *Proc)) *Proc { return s.Env.Spawn(name, body) }

// Run executes the simulation until no events remain and returns the
// final virtual time.
func (s *Sim) Run() Time { return s.Env.Run(0) }

// RunFor executes the simulation up to the virtual-time limit.
func (s *Sim) RunFor(limit Time) Time { return s.Env.Run(limit) }

// Driver attachment.
var (
	// AttachGM installs the GM driver on a node.
	AttachGM = gm.Attach
	// AttachMX installs the MX driver on a node.
	AttachMX = mx.Attach
)

// Fabric constructors: the five transport adapters and the per-node
// buffer pool.
var (
	// NewFabricGM wraps a raw GM port as a fabric transport.
	NewFabricGM = fabric.NewGM
	// NewFabricMX wraps a raw MX endpoint as a fabric transport.
	NewFabricMX = fabric.NewMX
	// NewFabricSocketsGM wraps an established SOCKETS-GM connection.
	NewFabricSocketsGM = fabric.NewSocketsGM
	// NewFabricSocketsMX wraps an established SOCKETS-MX connection.
	NewFabricSocketsMX = fabric.NewSocketsMX
	// NewFabricTCP wraps an established TCP/GigE connection.
	NewFabricTCP = fabric.NewTCP
	// FabricPoolOf returns a node's shared registered-buffer pool.
	FabricPoolOf = fabric.PoolOf
	// WithGMPolling makes GM completion waits spin (raw benchmarks).
	WithGMPolling = fabric.WithPolling
	// WithGMCachePages sizes the GM registration cache (0 disables).
	WithGMCachePages = fabric.WithCachePages
)

// NewOS creates the operating-system model for a node (VFS + page
// cache; pageCachePages 0 = unbounded).
func NewOS(node *Node, pageCachePages int) *OS { return kernel.NewOS(node, pageCachePages) }

// NewMemFS creates a local in-memory filesystem (server backing store).
func NewMemFS(name string, node *Node, pageCost Time) *MemFS { return memfs.New(name, node, pageCost) }

// NewFileServer creates an ORFA/ORFS file server over a backing store.
func NewFileServer(node *Node, fs rfsrv.BackingFS) *FileServer { return rfsrv.NewServer(node, fs) }

// NewORFS creates the in-kernel remote filesystem client over a
// transport (mount it with OS.Mount).
func NewORFS(name string, cl FSClient) *ORFS { return orfs.New(name, cl) }

// NewORFA creates the user-space remote file-access library.
func NewORFA(cl FSClient, as *AddressSpace) *ORFA { return orfa.New(cl, as) }

// NewMXClient creates the MX transport for ORFS (kernel) or ORFA (user).
var NewMXClient = rfsrv.NewMXClient

// NewGMClient creates the GM transport (with its GMKRC registration
// cache) for ORFS or ORFA.
var NewGMClient = rfsrv.NewGMClient

// NewFSSession layers a sliding window of in-flight requests over a
// protocol client: readahead, write-behind and combined metadata
// requests for ORFS/ORFA, ablations beyond the paper's synchronous
// prototypes.
var NewFSSession = rfsrv.NewSession

// NewFSCluster stripes file data across several servers, one session
// per server (stripe 0 selects the 64 KB default).
var NewFSCluster = rfsrv.NewCluster

// NewFSReplicatedCluster is NewFSCluster with a replication factor:
// every stripe is written to R consecutive servers, reads fail over
// to a replica when a server faults, and faulting servers are
// excluded rather than reported as namespace divergence. Reinstate
// re-admits a recovered server — refusing, with an error, one that
// missed namespace or exact-size mutations while excluded (resync it
// out of band first).
var NewFSReplicatedCluster = rfsrv.NewReplicatedCluster

// ErrFSStaleEpoch is the size-coherence refusal (wire status StStale):
// an OpSetSize carried an observed size epoch behind the server's.
// Cluster clients revalidate and retry internally, so it surfaces only
// when a MetaBatch carrying size mutations races a foreign client's
// (the caller re-issues the batch — the cache is already revalidated)
// or when a truncate/write exhausts its bounded revalidation retries
// against a pathological storm of foreign size sets.
var ErrFSStaleEpoch = rfsrv.ErrStaleEpoch

// ErrFSRenameInDoubt reports a sharded cross-owner rename interrupted
// after its outcome could no longer be rolled back unilaterally: the
// namespace is in one of exactly two legal states (the rename either
// fully happened or not at all — never both entries, never neither),
// and re-driving the same rename resolves which. errors.As to
// *FSRenameInDoubtError recovers the rename's coordinates.
var ErrFSRenameInDoubt = rfsrv.ErrRenameInDoubt

// ErrFSShardLayoutConflict rejects combining the sharded namespace
// with the per-file layout policy in either order (DESIGN.md §10/§11):
// the composition is a ROADMAP follow-up, so until it lands the
// conflict is a typed refusal instead of silent misbehavior.
var ErrFSShardLayoutConflict = rfsrv.ErrShardLayoutConflict

// ErrFSStaleMembership fails an operation on a cluster whose
// membership view fell behind: a reply carried a higher member epoch
// than the view the cluster holds, and the cluster is not attached to
// a shared FSMemberView it could adopt the new members from. The
// caller must re-attach (AttachView) or rebuild the cluster against
// the current membership (DESIGN.md §13).
var ErrFSStaleMembership = rfsrv.ErrStaleMembership

// Resync-journal bounds a server installs when SetJournalLimits was
// never called (DESIGN.md §13): while a replica is excluded, its
// peers journal up to this many namespace/size mutations and this
// many dirty data bytes for replay at Reinstate; past either bound
// the journal spills and re-admission falls back to a full-slice
// resync.
const (
	DefaultFSJournalOps   = rfsrv.DefaultJournalOps
	DefaultFSJournalBytes = rfsrv.DefaultJournalBytes
)

// DefaultFSSizePublishBatch is the publish window a sharded cluster
// installs when none was configured (Cluster.SetSizePublishBatch
// picks a different one): flush the coalesced grow-only size
// publishes every 16 enqueues.
const DefaultFSSizePublishBatch = rfsrv.DefaultSizePublishBatch

// Layout classes a cluster file can carry (DESIGN.md §10): standard
// round-robin striping (the default, bit-identical to the pre-layout
// protocol), whole-on-home for small files (all bytes on the inode's
// hash home: no fan-out, no size-reconciliation RPCs), and wide
// striping for very large files.
const (
	FSLayoutStandard = rfsrv.LayoutStandard
	FSLayoutWhole    = rfsrv.LayoutWhole
	FSLayoutWide     = rfsrv.LayoutWide
)

// Stripe geometry: the default and wide stripe widths, and the size at
// which the adaptive policy promotes a whole-on-home file to standard
// striping.
const (
	FSDefaultStripeSize = rfsrv.DefaultStripeSize
	FSWideStripeSize    = rfsrv.WideStripeSize
	FSPromoteThreshold  = rfsrv.PromoteThreshold
)

// ErrFSBadStripe rejects a stripe width that is not a positive
// page-aligned multiple no larger than the write chunk; ValidateFSStripe
// is the check the cluster constructors apply.
var (
	ErrFSBadStripe   = rfsrv.ErrBadStripe
	ValidateFSStripe = rfsrv.ValidateStripe
)

// NewRegCache creates a standalone GMKRC registration cache over a GM
// port (maxPages 0 disables caching).
func NewRegCache(port *GMPort, maxPages int) *RegCache { return gmkrc.New(port, maxPages) }

// Socket stacks.
var (
	// NewSocketsMX creates a SOCKETS-MX stack on a node.
	NewSocketsMX = sockets.NewMXStack
	// NewSocketsGM creates a SOCKETS-GM stack on a node.
	NewSocketsGM = sockets.NewGMStack
	// NewSocketsTCP creates the TCP/GigE baseline stack.
	NewSocketsTCP = sockets.NewTCPStack
)

// Block device.
var (
	// NewNBDServer exports a disk of numBlocks blocks.
	NewNBDServer = nbd.NewServer
	// NewNBDClient connects to an NBD server.
	NewNBDClient = nbd.NewClient
	// NewNBDDevice adapts a client for mounting through the VFS.
	NewNBDDevice = nbd.NewDevice
	// NewStripedNBDDevice adapts one client per server into a
	// block-striped device.
	NewStripedNBDDevice = nbd.NewStripedDevice
)

// DefaultParams returns the calibrated parameter set (see DESIGN.md §5).
func DefaultParams() *Params { return hw.DefaultParams() }

// DefaultConfig returns the experiment configuration used by
// EXPERIMENTS.md.
func DefaultConfig() Config { return figures.DefaultConfig() }

// NetpipeSizes returns the classic doubling size ladder up to max.
var NetpipeSizes = netpipe.Sizes
