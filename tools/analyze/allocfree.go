package main

// allocfree: functions whose doc comment carries a line starting
// //allocfree are per-request hot-path code audited to zero (or
// near-zero) allocations in PR 6. The root alloc_gate_test.go pins
// the COUNT per operation; this analyzer pins the WHERE — a
// regression names the construct and line instead of a bare number.
//
// Flagged constructs (each one allocates, or defeats the compiler's
// escape analysis on this path):
//
//   - function literals (closures capture their environment on the
//     heap once anything escapes — hot paths use prebuilt closures);
//   - calls into package fmt (every verb boxes and allocates);
//   - concrete-to-interface conversions in calls, assignments and
//     returns (boxing);
//   - make and new (fresh heap objects; the one exception is the
//     compiler-recognized extend idiom append(dst, make([]T, n)...),
//     which grows dst in place when capacity suffices);
//   - composite literals whose address is taken (&T{...} escapes);
//   - string <-> []byte conversions and string concatenation (both
//     copy through a fresh allocation).
//
// Plain append is deliberately NOT flagged: the audited paths append
// into presized pooled scratch, growth is what the gate's count
// catches, and a static checker cannot see capacities. Error paths
// that allocate (fmt.Errorf on a corrupt frame) are fine — baseline
// them with //analyze:allow allocfree <reason>.

import (
	"go/ast"
	"go/types"
	"strings"
)

var allocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //allocfree must not contain allocating constructs",
	Run:  runAllocFree,
}

func runAllocFree(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isAllocFree(fd) {
				continue
			}
			p.checkAllocFree(fd)
		}
	}
}

// isAllocFree reports whether the function's doc comment contains an
// //allocfree directive line. gofmt inserts a space after // in
// non-colon directives, so "// allocfree" is accepted too.
func isAllocFree(fd *ast.FuncDecl) bool {
	for _, c := range funcDoc(fd) {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "allocfree" || strings.HasPrefix(text, "allocfree ") {
			return true
		}
	}
	return false
}

// checkAllocFree walks one annotated function body.
func (p *Pass) checkAllocFree(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.report(n.Pos(), "closure in //allocfree function: the captured environment allocates; hoist it to a prebuilt closure or a method")
			return false // its body runs under its own budget
		case *ast.CallExpr:
			p.checkAllocCall(n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.report(n.Pos(), "&composite literal in //allocfree function allocates; reuse a pooled record")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := p.Info.Types[n]; ok && isString(tv.Type) {
					p.report(n.Pos(), "string concatenation in //allocfree function allocates; use presized scratch")
				}
			}
		case *ast.AssignStmt:
			p.checkBoxingAssign(n)
		case *ast.ReturnStmt:
			p.checkBoxingReturn(fd, n)
		}
		return true
	})
}

// checkAllocCall flags allocating calls: fmt, make/new, string
// conversions, and interface boxing of arguments.
func (p *Pass) checkAllocCall(call *ast.CallExpr) {
	if name, ok := p.isPkgCall(call, "fmt"); ok {
		p.report(call.Pos(), "fmt.%s in //allocfree function: fmt boxes every operand and allocates", name)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if !p.isAppendExtendArg(call) {
					p.report(call.Pos(), "make in //allocfree function allocates; presize at setup or reuse pooled scratch (append(dst, make(...)...) extend is exempt)")
				}
				return
			case "new":
				p.report(call.Pos(), "new in //allocfree function allocates; reuse a pooled record")
				return
			}
		}
	}
	// Conversions string([]byte) / []byte(string) copy and allocate.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, p.Info.Types[call.Args[0]].Type
		if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
			p.report(call.Pos(), "string/[]byte conversion in //allocfree function copies through a fresh allocation")
		}
		return
	}
	// Interface boxing of concrete arguments.
	f := p.callee(call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		p.checkBoxing(arg, param, "argument")
	}
}

// isAppendExtendArg reports whether the make call is spread directly
// into an append (append(dst, make([]T, n)...)), which the compiler
// turns into an in-place extension.
func (p *Pass) isAppendExtendArg(mk *ast.CallExpr) bool {
	for _, f := range p.Files {
		if !(f.Pos() <= mk.Pos() && mk.Pos() <= f.End()) {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" || call.Ellipsis == 0 {
				return true
			}
			if len(call.Args) == 2 && ast.Unparen(call.Args[1]) == mk {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// checkBoxingAssign flags concrete values assigned into interface
// variables.
func (p *Pass) checkBoxingAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		ltv, ok := p.Info.Types[lhs]
		if !ok {
			// := defines a new variable; its type is the RHS type, no
			// conversion happens.
			continue
		}
		p.checkBoxing(as.Rhs[i], ltv.Type, "assignment")
	}
}

// checkBoxingReturn flags concrete values returned as interfaces.
func (p *Pass) checkBoxingReturn(fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj := p.Info.Defs[fd.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		p.checkBoxing(r, sig.Results().At(i).Type(), "return")
	}
}

// checkBoxing reports expr if it is a concrete (non-interface)
// value converted to an interface target — boxing, one heap
// allocation per conversion (apart from nil and untyped constants).
func (p *Pass) checkBoxing(expr ast.Expr, target types.Type, where string) {
	if target == nil {
		return
	}
	if !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || tv.Value != nil {
		return // nil or constant: no boxing at this site worth flagging
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return // interface-to-interface: no new box
	}
	// error results built by returning a typed error variable are the
	// dominant idiom and do not allocate (the value is already an
	// interface or a pointer to a long-lived object); only flag
	// non-pointer concrete types, where the box copies the value.
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return
	}
	p.report(expr.Pos(), "interface boxing in //allocfree function (%s of concrete %s into %s): the box allocates", where, tv.Type, target)
}

// isString reports whether t is (an alias of) string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String || ok && b.Kind() == types.UntypedString
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte || ok && b.Kind() == types.Uint8
}
