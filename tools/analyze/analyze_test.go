package main

// Fixture tests: each analyzer runs over a small module rooted at
// testdata/src/<analyzer>/, whose packages carry `// want "substr"`
// expectations on the lines where findings must appear (and stand-in
// packages for the real sim/fabric/hw types, which the analyzers
// match by name exactly so these fixtures work).

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/internal/fixture"
)

// runFixture loads the named packages of the analyzer's fixture
// module, applies just that analyzer, and checks the findings against
// the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", a.Name))
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader("fixture", root)
	var got []fixture.Diag
	for _, pkg := range pkgs {
		pass, err := ld.load(filepath.Join(root, pkg))
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", pkg, err)
		}
		pass.analyzer = a
		a.Run(pass)
		for _, f := range pass.findings {
			got = append(got, fixture.Diag{File: f.Pos.Filename, Line: f.Pos.Line, Msg: f.Msg})
		}
	}
	fixture.Check(t, root, got)
}

func TestSimDeterminism(t *testing.T) { runFixture(t, simDeterminism, "sim") }

func TestPoolPair(t *testing.T) { runFixture(t, poolPair, "a", "hw") }

func TestOpExhaustive(t *testing.T) { runFixture(t, opExhaustive, "a", "rfsrv") }

func TestLockOrder(t *testing.T) { runFixture(t, lockOrder, "a") }

func TestAllocFree(t *testing.T) { runFixture(t, allocFree, "a") }

// TestAllowRequiresReason: a bare //analyze:allow with no reason is
// itself a finding, recorded when the package loads (no analyzer has
// to run).
func TestAllowRequiresReason(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "allowreason"))
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader("fixture", root)
	pass, err := ld.load(filepath.Join(root, "a"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pass.findings) != 1 {
		t.Fatalf("got %d findings at load time, want exactly 1", len(pass.findings))
	}
	if !strings.Contains(pass.findings[0].Msg, "without a reason") {
		t.Fatalf("finding %q does not explain the missing reason", pass.findings[0].Msg)
	}
}

// TestSelectAnalyzers covers the -run flag resolution.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(analyzers) {
		t.Fatalf("empty selection: got %d analyzers, err %v", len(all), err)
	}
	two, err := selectAnalyzers("poolpair,lockorder")
	if err != nil || len(two) != 2 || two[0].Name != "poolpair" || two[1].Name != "lockorder" {
		t.Fatalf("named selection failed: %v, err %v", two, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must be an error")
	}
}
