package main

// opexhaustive: protocol op and status tables must stay fully wired.
// A new Op* constant (lease callbacks are coming, ROADMAP item 3)
// must appear in the opNames table, the server dispatch, and the
// resync replay engine before it ships; a new St* status must map to
// a typed error. Half-wired ops historically surface as StIO at soak
// time — this moves the check to compile time.
//
// Surfaces are marked with a directive comment on the line above a
// switch statement or a map composite literal:
//
//	//analyze:dispatch <class> [group=<name>] [-Excluded]...
//
// class is "ops" (universe: Op*-prefixed constants) or "statuses"
// (St*-prefixed). The universe is every package-level constant of
// the first case label's (or map key's) type and prefix, drawn from
// the package that declares that type. A surface must cover the
// whole universe minus its explicit -Exclusions; surfaces sharing a
// group=<name> are unioned first (the server's meta dispatch plus
// the read/write worker switches together cover every op). An
// exclusion that IS covered is reported too — stale exclusions rot.
//
// The rfsrv package itself must declare at least one "ops" and one
// "statuses" surface: deleting the annotations cannot silently
// disable the gate.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var opExhaustive = &Analyzer{
	Name: "opexhaustive",
	Doc:  "annotated op/status dispatch surfaces must be exhaustive over their constant family",
	Run:  runOpExhaustive,
}

// dispatchClass describes one constant family.
type dispatchClass struct {
	name   string
	prefix string
}

var dispatchClasses = map[string]dispatchClass{
	"ops":      {name: "ops", prefix: "Op"},
	"statuses": {name: "statuses", prefix: "St"},
}

// surface is one annotated dispatch site, parsed and resolved.
type surface struct {
	pos      token.Pos
	class    dispatchClass
	group    string
	excluded map[string]bool
	covered  map[string]bool
	universe map[string]token.Pos // const name -> declaration position
	desc     string
}

func runOpExhaustive(p *Pass) {
	var surfaces []*surface
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if s := p.parseDispatch(f, n.Pos(), n.Body, nil); s != nil {
					surfaces = append(surfaces, s)
				}
			case *ast.GenDecl, *ast.AssignStmt, *ast.ValueSpec:
				// Map literal surfaces are found through their
				// composite literal below.
			case *ast.CompositeLit:
				if s := p.parseMapDispatch(f, n); s != nil {
					surfaces = append(surfaces, s)
				}
			}
			return true
		})
	}
	p.checkSurfaces(surfaces)
	if p.Pkg.Name() == "rfsrv" {
		for _, class := range []string{"ops", "statuses"} {
			found := false
			for _, s := range surfaces {
				if s.class.name == class {
					found = true
					break
				}
			}
			if !found && len(p.Files) > 0 {
				p.report(p.Files[0].Package, "package rfsrv declares no //analyze:dispatch %s surface: the exhaustiveness gate is disabled", class)
			}
		}
	}
}

// parseDispatch builds a surface from an annotated switch statement.
// cover, when non-nil, pre-seeds the covered set (used by the map
// form).
func (p *Pass) parseDispatch(f *ast.File, pos token.Pos, body *ast.BlockStmt, cover map[string]bool) *surface {
	s := p.parseDirective(f, pos)
	if s == nil {
		return nil
	}
	s.covered = cover
	if s.covered == nil {
		s.covered = map[string]bool{}
	}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			p.addCovered(s, e)
		}
	}
	if s.universe == nil {
		p.report(pos, "//analyze:dispatch %s: no case label resolves to a %s* constant, cannot determine the constant family", s.class.name, s.class.prefix)
		return nil
	}
	return s
}

// parseMapDispatch builds a surface from an annotated map composite
// literal (the opNames table form).
func (p *Pass) parseMapDispatch(f *ast.File, lit *ast.CompositeLit) *surface {
	tv, ok := p.Info.Types[lit]
	if !ok || !isMapType(tv.Type) {
		return nil
	}
	// The directive may sit above the literal itself or above the
	// enclosing var declaration; try the literal's line first, then
	// the var keyword's.
	s := p.parseDirective(f, lit.Pos())
	if s == nil {
		return nil
	}
	s.covered = map[string]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		p.addCovered(s, kv.Key)
	}
	if s.universe == nil {
		p.report(lit.Pos(), "//analyze:dispatch %s: no map key resolves to a %s* constant, cannot determine the constant family", s.class.name, s.class.prefix)
		return nil
	}
	return s
}

// parseDirective parses the //analyze:dispatch comment directly above
// pos, if any.
func (p *Pass) parseDirective(f *ast.File, pos token.Pos) *surface {
	cg := commentBefore(f, p.Fset, pos)
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//analyze:dispatch ")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			p.report(c.Pos(), "//analyze:dispatch without a class (ops or statuses)")
			return nil
		}
		class, ok := dispatchClasses[fields[0]]
		if !ok {
			p.report(c.Pos(), "//analyze:dispatch %s: unknown class (want ops or statuses)", fields[0])
			return nil
		}
		s := &surface{pos: pos, class: class, excluded: map[string]bool{}}
		for _, fld := range fields[1:] {
			switch {
			case strings.HasPrefix(fld, "group="):
				s.group = strings.TrimPrefix(fld, "group=")
			case strings.HasPrefix(fld, "-"):
				s.excluded[strings.TrimPrefix(fld, "-")] = true
			default:
				p.report(c.Pos(), "//analyze:dispatch: unrecognized field %q (want group=<name> or -<Const>)", fld)
			}
		}
		s.desc = fmt.Sprintf("%s surface", class.name)
		if s.group != "" {
			s.desc = fmt.Sprintf("%s surface (group %s)", class.name, s.group)
		}
		return s
	}
	return nil
}

// addCovered resolves one case label or map key to a constant of the
// surface's family, recording it and (on first resolution) the
// family's universe.
func (p *Pass) addCovered(s *surface, e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		if sel, isSel := ast.Unparen(e).(*ast.SelectorExpr); isSel {
			id = sel.Sel
		} else {
			return
		}
	}
	obj, ok := p.Info.Uses[id].(*types.Const)
	if !ok || !strings.HasPrefix(obj.Name(), s.class.prefix) {
		return
	}
	s.covered[obj.Name()] = true
	if s.universe == nil {
		s.universe = constFamily(obj, s.class.prefix)
	}
}

// constFamily collects every package-level constant in sample's
// package that shares sample's type and the class prefix.
func constFamily(sample *types.Const, prefix string) map[string]token.Pos {
	pkg := sample.Pkg()
	if pkg == nil {
		return nil
	}
	out := map[string]token.Pos{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, prefix) {
			continue
		}
		if !types.Identical(c.Type(), sample.Type()) {
			continue
		}
		// Lower-case follow-on (Opq...) can slip a prefix match; the
		// families are ASCII UpperCamel, so require an upper or digit
		// after the prefix... except exact-prefix names never occur.
		out[name] = c.Pos()
	}
	return out
}

// checkSurfaces unions grouped surfaces and reports uncovered and
// stale-excluded constants.
func (p *Pass) checkSurfaces(surfaces []*surface) {
	grouped := map[string][]*surface{}
	for _, s := range surfaces {
		key := ""
		if s.group != "" {
			key = s.class.name + "/" + s.group
		}
		if key == "" {
			p.checkOne(s, s.covered, s.excluded)
			continue
		}
		grouped[key] = append(grouped[key], s)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := grouped[k]
		covered := map[string]bool{}
		excluded := map[string]bool{}
		for _, s := range group {
			for name := range s.covered {
				covered[name] = true
			}
			for name := range s.excluded {
				excluded[name] = true
			}
		}
		p.checkOne(group[0], covered, excluded)
	}
}

// checkOne verifies one (possibly unioned) surface against its
// universe.
func (p *Pass) checkOne(s *surface, covered, excluded map[string]bool) {
	names := make([]string, 0, len(s.universe))
	for name := range s.universe {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch {
		case covered[name] && excluded[name]:
			p.report(s.pos, "%s excludes -%s but covers it: remove the stale exclusion", s.desc, name)
		case !covered[name] && !excluded[name]:
			p.report(s.pos, "%s does not handle %s (declared at %s): wire it or exclude it explicitly with -%s",
				s.desc, name, p.Fset.Position(s.universe[name]), name)
		}
	}
}
