package main

// The analyzer framework: the Analyzer registry, the per-package
// Pass with its type information, finding collection, and the
// //analyze:allow baseline machinery shared by every analyzer.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the Pass and
// reports findings through Pass.report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the registry, in the order findings sort within one
// position.
var analyzers = []*Analyzer{
	simDeterminism,
	poolPair,
	opExhaustive,
	lockOrder,
	allocFree,
}

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

// Pass carries one loaded package through the analyzers.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info

	analyzer *Analyzer
	findings []Finding
	allows   map[string]map[int]allowLine // file -> line -> allow
}

// allowLine is one parsed //analyze:allow comment.
type allowLine struct {
	analyzer string
	reason   string
}

// newPass builds a Pass and indexes its baseline comments.
func newPass(fset *token.FileSet, pkg *types.Package, files []*ast.File, info *types.Info) *Pass {
	p := &Pass{Fset: fset, Pkg: pkg, Files: files, Info: info,
		allows: map[string]map[int]allowLine{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//analyze:allow ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				byLine := p.allows[pos.Filename]
				if byLine == nil {
					byLine = map[int]allowLine{}
					p.allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = allowLine{analyzer: name, reason: strings.TrimSpace(reason)}
				if strings.TrimSpace(reason) == "" {
					p.findings = append(p.findings, Finding{
						Pos:      pos,
						Analyzer: name,
						Msg:      "//analyze:allow without a reason — state why the finding is acceptable",
					})
				}
			}
		}
	}
	return p
}

// report files a finding at pos unless a matching baseline comment
// sits on the same line or the line above.
func (p *Pass) report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if byLine := p.allows[position.Filename]; byLine != nil {
		for _, line := range []int{position.Line, position.Line - 1} {
			if a, ok := byLine[line]; ok && a.analyzer == p.analyzer.Name && a.reason != "" {
				return
			}
		}
	}
	p.findings = append(p.findings, Finding{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// callee resolves the called function or method of a call expression,
// or nil for calls through function values and type conversions.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning its name.
func (p *Pass) isPkgCall(call *ast.CallExpr, pkgPath string) (string, bool) {
	f := p.callee(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // method, not a package-level function
	}
	return f.Name(), true
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		t = types.Unalias(t)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		n, _ := t.(*types.Named)
		return n
	}
}

// typeIs reports whether t (possibly behind pointers) is the named
// type typeName declared in a package named pkgName. Matching is by
// package name, not path, so fixture packages can stand in for the
// real ones in tests.
func typeIs(t types.Type, pkgName, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// funcDoc returns the doc comment group of a function declaration,
// tolerating nil.
func funcDoc(fd *ast.FuncDecl) []*ast.Comment {
	if fd.Doc == nil {
		return nil
	}
	return fd.Doc.List
}

// commentOnLine returns the comment group whose last line is exactly
// line-1 or that starts on line, used to find directive comments
// attached to arbitrary statements.
func commentBefore(f *ast.File, fset *token.FileSet, pos token.Pos) *ast.CommentGroup {
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		if fset.Position(cg.End()).Line == line-1 {
			return cg
		}
	}
	return nil
}
