package main

// lockorder: the package's lock-acquisition partial order is declared
// once, in a directive comment, and every function is checked against
// it:
//
//	//analyze:lockorder Session.free < FabricClient.lock
//
// Entities are Type.field pairs in the analyzed package. An
// acquisition is x.<field>.Lock() / RLock() (sync.Mutex, RWMutex),
// x.<field>.Acquire(p) (sim.Resource used as a lock), or
// x.<field>.Recv(p) (sim.Chan used as a token pool — receiving a
// token IS taking the slot); the matching release is Unlock/RUnlock,
// Release, or Send of the token back. Declaring `A < B` means A must
// already be held when B is taken, never taken while B is held.
//
// Checked per function, with a one-level summary of same-package
// callees (a call to a function that acquires E counts as acquiring
// E at the call site):
//
//   - out-of-order nesting: acquiring A while holding B when A < B;
//   - re-entry: acquiring the same entity through the same receiver
//     expression while it is already held (self-deadlock for
//     non-reentrant locks; capacity-1 sim.Resources park forever);
//   - channel sends while holding any declared lock (a sim.Chan send
//     can park the holder; the only exempt send is the one returning
//     a held token, which is the release itself).
//
// Distinct instances of one entity (two servers' sessions) are NOT
// distinguished across calls, so re-entry is only checked against
// syntactically identical receiver chains within one function —
// fanning out over sessions[i] stays silent.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

var lockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "declared lock order holds; no re-entry; no channel sends under a held lock",
	Run:  runLockOrder,
}

// lockEntity is one declared lock: a field of a type in the analyzed
// package.
type lockEntity struct {
	typ, field string
}

func (e lockEntity) String() string { return e.typ + "." + e.field }

// lockDecls is the parsed order declaration: before[A][B] means A
// must be acquired before B (transitively closed).
type lockDecls struct {
	entities map[lockEntity]bool
	before   map[lockEntity]map[lockEntity]bool
}

var acquireMethods = map[string]bool{"Lock": true, "RLock": true, "Acquire": true, "Recv": true}
var releaseMethods = map[string]bool{"Unlock": true, "RUnlock": true, "Release": true, "Send": true}

func runLockOrder(p *Pass) {
	decls := p.parseLockOrder()
	if decls == nil {
		return
	}
	summaries := p.lockSummaries(decls)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockChecker{p: p, decls: decls, summaries: summaries}
			lc.walk(fd.Body, map[string]lockEntity{})
		}
	}
}

// parseLockOrder finds and parses every //analyze:lockorder comment
// in the package.
func (p *Pass) parseLockOrder() *lockDecls {
	d := &lockDecls{entities: map[lockEntity]bool{}, before: map[lockEntity]map[lockEntity]bool{}}
	found := false
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//analyze:lockorder ")
				if !ok {
					continue
				}
				found = true
				var chain []lockEntity
				bad := false
				for _, part := range strings.Split(rest, "<") {
					typ, field, ok := strings.Cut(strings.TrimSpace(part), ".")
					if !ok || typ == "" || field == "" {
						p.report(c.Pos(), "//analyze:lockorder: %q is not Type.field", strings.TrimSpace(part))
						bad = true
						break
					}
					chain = append(chain, lockEntity{typ: typ, field: field})
				}
				if bad {
					continue
				}
				for i, e := range chain {
					d.entities[e] = true
					for _, later := range chain[i+1:] {
						if d.before[e] == nil {
							d.before[e] = map[lockEntity]bool{}
						}
						d.before[e][later] = true
					}
				}
			}
		}
	}
	if !found {
		return nil
	}
	// Transitive closure over the declared chains.
	for changed := true; changed; {
		changed = false
		for a, bs := range d.before {
			for b := range bs {
				for c := range d.before[b] {
					if !d.before[a][c] {
						d.before[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	return d
}

// lockSummaries builds, per package-level function, the set of
// declared entities it may acquire anywhere inside (one level deep —
// callees' callees are not chased).
func (p *Pass) lockSummaries(decls *lockDecls) map[types.Object]map[lockEntity]bool {
	direct := map[types.Object]map[lockEntity]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			acq := map[lockEntity]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if e, _, isAcq := p.lockSite(decls, call); isAcq {
					acq[e] = true
				}
				return true
			})
			if len(acq) > 0 {
				direct[obj] = acq
			}
		}
	}
	return direct
}

// lockSite matches a call against the declared entities: it returns
// the entity, the receiver-chain spelling, and whether the call
// acquires (true) or releases (false matches only when the returned
// entity is valid, indicated by ok).
func (p *Pass) lockSite(decls *lockDecls, call *ast.CallExpr) (e lockEntity, recv string, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEntity{}, "", false
	}
	method := sel.Sel.Name
	if !acquireMethods[method] && !releaseMethods[method] {
		return lockEntity{}, "", false
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEntity{}, "", false
	}
	base := fieldSel.X
	tv, ok := p.Info.Types[base]
	if !ok {
		return lockEntity{}, "", false
	}
	n := namedOf(tv.Type)
	if n == nil {
		return lockEntity{}, "", false
	}
	ent := lockEntity{typ: n.Obj().Name(), field: fieldSel.Sel.Name}
	if !decls.entities[ent] {
		return lockEntity{}, "", false
	}
	return ent, exprString(p.Fset, sel.X), acquireMethods[method]
}

// lockChecker walks one function tracking held locks. held maps the
// receiver-chain spelling to its entity.
type lockChecker struct {
	p         *Pass
	decls     *lockDecls
	summaries map[types.Object]map[lockEntity]bool
}

// walk processes a statement or expression subtree linearly. Branch
// structure is deliberately ignored: acquisitions and releases in Go
// lock discipline are overwhelmingly straight-line or deferred, and a
// linear scan with defer handling keeps the checker predictable.
func (lc *lockChecker) walk(n ast.Node, held map[string]lockEntity) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.DeferStmt:
			// A deferred release drops the lock at function exit, not
			// here; for nesting purposes the lock stays held for the
			// rest of the function, which is exactly how we model it:
			// skip the defer's release effect.
			if e, _, isAcq := lc.p.lockSite(lc.decls, x.Call); !isAcq && lc.decls.entities[e] {
				return false
			}
			return true
		case *ast.CallExpr:
			lc.checkCall(x, held)
			return true
		case *ast.SendStmt:
			if len(held) > 0 {
				lc.p.report(x.Pos(), "channel send while holding %s: a blocked receiver parks the lock holder", heldNames(held))
			}
			return true
		case *ast.FuncLit:
			// A closure runs later with its own lock context.
			return false
		}
		return true
	})
}

// checkCall applies acquire/release/summary effects of one call.
func (lc *lockChecker) checkCall(call *ast.CallExpr, held map[string]lockEntity) {
	if e, recv, isAcq := lc.p.lockSite(lc.decls, call); lc.decls.entities[e] {
		if isAcq {
			if cur, ok := held[recv]; ok && cur == e {
				lc.p.report(call.Pos(), "re-entrant acquisition of %s via %s: already held on this path", e, recv)
			}
			for _, h := range held {
				if h != e && lc.decls.before[e][h] {
					lc.p.report(call.Pos(), "lock order violation: acquiring %s while holding %s (declared order: %s < %s)", e, h, e, h)
				}
			}
			// The Recv acquisition form IS a channel receive on a
			// token pool; further sends under it are checked below.
			held[recv] = e
		} else {
			delete(held, recv)
		}
		return
	}
	// Send on a sim.Chan while holding a lock: the exempt case — the
	// send that returns a held token — was handled above as release.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Send" && len(held) > 0 {
		if tv, ok := lc.p.Info.Types[sel.X]; ok && typeIs(tv.Type, "sim", "Chan") {
			lc.p.report(call.Pos(), "sim.Chan send while holding %s: a full channel parks the lock holder", heldNames(held))
			return
		}
	}
	// One-level summary: a same-package callee that acquires declared
	// entities counts as acquiring them here.
	f := lc.p.callee(call)
	if f == nil || f.Pkg() != lc.p.Pkg {
		return
	}
	for e := range lc.summaries[f] {
		for _, h := range held {
			if h != e && lc.decls.before[e][h] {
				lc.p.report(call.Pos(), "lock order violation: %s acquires %s while %s is held here (declared order: %s < %s)", f.Name(), e, h, e, h)
			}
		}
	}
}

// heldNames renders the held set for diagnostics.
func heldNames(held map[string]lockEntity) string {
	seen := map[string]bool{}
	var names []string
	for _, e := range held {
		if !seen[e.String()] {
			seen[e.String()] = true
			names = append(names, e.String())
		}
	}
	if len(names) > 1 {
		// Deterministic output.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	return strings.Join(names, ", ")
}

// exprString renders an expression for receiver-identity comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
