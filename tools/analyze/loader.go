package main

// The loader: parse + type-check one package directory with the
// standard library only. Module-local imports are resolved by mapping
// the import path onto the module root; everything else (the standard
// library) is type-checked from GOROOT source via the "source"
// importer. Loaded packages are cached per loader, so analyzing the
// whole tree pays for each dependency once.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checked is one fully loaded module-local package: checking a
// package once and reusing the result everywhere keeps type identity
// consistent between analysis targets and their dependents.
type checked struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader loads and type-checks packages for analysis.
type loader struct {
	fset  *token.FileSet
	mod   string                    // module path (import prefix of local packages)
	root  string                    // module root directory
	local map[string]*checked       // module-local packages by import path
	std   map[string]*types.Package // everything else (the stdlib)
	src   types.Importer            // GOROOT source importer for the stdlib
}

// newLoader returns a loader for the module mod rooted at root.
func newLoader(mod, root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:  fset,
		mod:   mod,
		root:  root,
		local: map[string]*checked{},
		std:   map[string]*types.Package{},
		src:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer: module-local packages load from
// the mapped directory, everything else through the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.mod), "/")
		c, err := l.check(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return c.pkg, nil
	}
	if p, ok := l.std[path]; ok {
		return p, nil
	}
	p, err := l.src.Import(path)
	if err == nil {
		l.std[path] = p
	}
	return p, err
}

// load type-checks the package in dir and builds the analysis pass
// for it.
func (l *loader) load(dir string) (*Pass, error) {
	c, err := l.check(l.pathOf(dir), dir)
	if err != nil {
		return nil, err
	}
	return newPass(l.fset, c.pkg, c.files, c.info), nil
}

// pathOf maps a directory under the module root to its import path;
// directories outside the module get a synthetic path.
func (l *loader) pathOf(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.mod
		}
		return l.mod + "/" + filepath.ToSlash(rel)
	}
	return dir
}

// check parses and type-checks the (non-test) package in dir,
// reusing the cached result when the path was already loaded (as a
// target or as a dependency).
func (l *loader) check(path, dir string) (*checked, error) {
	if c, ok := l.local[path]; ok {
		return c, nil
	}
	pkgs, err := parser.ParseDir(l.fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// A directory holds at most one non-test package (plus possibly
	// an ignored main for tool directories); prefer the non-main one
	// when both exist, matching what an importer of the path gets.
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pick := ""
	for _, name := range names {
		if pick == "" || (pick == "main" && name != "main") {
			pick = name
		}
	}
	if pick == "" {
		return nil, fmt.Errorf("no Go packages in %s", dir)
	}
	fnames := make([]string, 0, len(pkgs[pick].Files))
	for fname := range pkgs[pick].Files {
		fnames = append(fnames, fname)
	}
	sort.Strings(fnames)
	for _, fname := range fnames {
		files = append(files, pkgs[pick].Files[fname])
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if typeErr != nil {
		return nil, typeErr
	}
	if err != nil {
		return nil, err
	}
	c := &checked{pkg: pkg, files: files, info: info}
	l.local[path] = c
	return c, nil
}
