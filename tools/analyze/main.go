// Command analyze is the repository's invariant analyzer suite: a
// vet-style static-analysis driver (DESIGN.md §14) with five
// repo-specific analyzers, each guarding an invariant that is
// otherwise only checked at runtime, after the bug has happened:
//
//   - simdeterminism: sim-driven packages must stay bit-deterministic
//     (no wall clock, no global math/rand, no map-iteration order
//     feeding schedules or wire traffic) so one-line torture seed
//     replay keeps working.
//   - poolpair: every pooled acquisition (fabric.Pool.Get, server
//     work records, NIC fragment records) reaches its release on all
//     paths — the static complement of fabric.Pool.CheckLeaks.
//   - opexhaustive: protocol op and status tables stay fully wired —
//     every Op* constant appears in each annotated dispatch surface,
//     every St* status maps to a typed error.
//   - lockorder: the declared lock acquisition order holds, locks are
//     not re-entered, and nothing sends on a channel while holding
//     one.
//   - allocfree: functions annotated //allocfree contain no
//     allocating constructs, turning the alloc gate's count
//     regression into a pinpointed diagnostic.
//
// Like tools/doccheck it is implemented with the standard library
// only (go/parser + go/types, stdlib imports type-checked from
// GOROOT source), so the container needs no extra modules.
//
// Usage:
//
//	go run ./tools/analyze ./...
//	go run ./tools/analyze -run poolpair,opexhaustive ./internal/rfsrv
//
// A finding is suppressed by a baseline comment on the offending
// line or the line above it:
//
//	//analyze:allow <analyzer> <reason>
//
// The reason is mandatory; an allow comment without one is itself a
// finding. Exit status is 1 if any finding survives, 2 on load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-run names] <package dir or ./...>...")
		os.Exit(2)
	}
	selected, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	mod, root, err := findModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	dirs, err := expandPatterns(root, wd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(2)
	}
	ld := newLoader(mod, root)
	findings, broken := runAnalyzers(ld, dirs, selected)
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Msg)
	}
	if broken {
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "analyze: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runAnalyzers loads every target directory and applies the selected
// analyzers, returning the surviving findings sorted by position.
// broken reports load or parse failures (printed to stderr), which
// are distinct from findings.
func runAnalyzers(ld *loader, dirs []string, selected []*Analyzer) (findings []Finding, broken bool) {
	for _, dir := range dirs {
		pass, err := ld.load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %s: %v\n", dir, err)
			broken = true
			continue
		}
		for _, a := range selected {
			pass.analyzer = a
			a.Run(pass)
		}
		findings = append(findings, pass.findings...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, broken
}

// selectAnalyzers resolves the -run flag against the registry.
func selectAnalyzers(csv string) ([]*Analyzer, error) {
	if csv == "" {
		return analyzers, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(csv, ",") {
		found := false
		for _, a := range analyzers {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns
// the module path and root directory.
func findModule(dir string) (mod, root string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// expandPatterns turns command-line package patterns (./..., ./dir)
// into a sorted list of directories containing non-test Go files.
// testdata and hidden directories are skipped, exactly like the go
// tool's ./... expansion.
func expandPatterns(root, wd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(wd, base)
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("%s: no Go files", pat)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	_ = root
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
