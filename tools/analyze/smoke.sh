#!/bin/sh
# Analyzer regression smoke: prove the gate actually catches the
# regressions it exists for, not just that it exits zero today.
# Injects two defects into the working tree — a deleted pool Release
# (a buffer leak on an error path) and an unwired protocol opcode —
# and requires the analyzer to fail on each, then restores the tree
# byte-for-byte from backups (no git operations, safe on a dirty
# tree).
set -eu

root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$root"

victim=internal/sockets/gmsock.go
injected=internal/rfsrv/zz_smoke_injected.go

tmp="$(mktemp -d)"
restore() {
	cp "$tmp/gmsock.go.bak" "$victim"
	rm -f "$injected"
	rm -rf "$tmp"
}
trap restore EXIT
cp "$victim" "$tmp/gmsock.go.bak"

run_analyzer() { go run ./tools/analyze ./... 2>&1; }

echo "smoke: clean tree must pass"
if ! out="$(run_analyzer)"; then
	echo "$out"
	echo "smoke: FAIL — analyzer not clean before injection"
	exit 1
fi

echo "smoke: deleted pool Release must fail poolpair"
sed -i '/^\t\ttx\.Release()$/d' "$victim"
if cmp -s "$victim" "$tmp/gmsock.go.bak"; then
	echo "smoke: FAIL — injection did not change $victim (site moved?)"
	exit 1
fi
if out="$(run_analyzer)"; then
	echo "smoke: FAIL — analyzer passed with a deleted Release"
	exit 1
fi
if ! echo "$out" | grep -q '\[poolpair\]'; then
	echo "$out"
	echo "smoke: FAIL — analyzer failed but reported no poolpair finding"
	exit 1
fi
cp "$tmp/gmsock.go.bak" "$victim"

echo "smoke: unwired opcode must fail opexhaustive"
cat >"$injected" <<'EOF'
package rfsrv

// OpSmokeInjected is a deliberately unwired opcode injected by the
// analyzer regression smoke (tools/analyze/smoke.sh); it never lands
// in the tree.
const OpSmokeInjected Op = 250
EOF
if out="$(run_analyzer)"; then
	echo "smoke: FAIL — analyzer passed with an unwired opcode"
	exit 1
fi
if ! echo "$out" | grep -q '\[opexhaustive\]'; then
	echo "$out"
	echo "smoke: FAIL — analyzer failed but reported no opexhaustive finding"
	exit 1
fi
rm -f "$injected"

echo "smoke: PASS"
