// Package a holds a baseline comment with no reason: the comment
// itself must become a finding at load time.
package a

//analyze:allow allocfree
func f() {}
