// Package a exercises the poolpair path walk against the fabric
// stand-in.
package a

import "fixture/fabric"

type holder struct{ b *fabric.Buffer }

type queue struct{}

func (q *queue) push(b *fabric.Buffer) {}

func leakOnEarlyReturn(p *fabric.Pool) error {
	buf, err := p.Get(64) // want "fabric.Pool.Get is not released on every path: leaks at this return"
	if err != nil {
		return err // buf is nil here: not the leak
	}
	if buf.VA() == 0 {
		return nil // the leak: still owned, no release
	}
	buf.Release()
	return nil
}

func balancedDefer(p *fabric.Pool) error {
	buf, err := p.Get(64)
	if err != nil {
		return err
	}
	defer buf.Release()
	return nil
}

func balancedBothArms(p *fabric.Pool, cond bool) {
	buf, err := p.Get(64)
	if err != nil {
		return
	}
	if cond {
		buf.Release()
	} else {
		buf.Release()
	}
}

func ownershipToField(p *fabric.Pool, h *holder) error {
	buf, err := p.Get(64)
	if err != nil {
		return err
	}
	h.b = buf // the holder releases later
	return nil
}

func ownershipToCall(p *fabric.Pool, q *queue) error {
	buf, err := p.Get(64)
	if err != nil {
		return err
	}
	q.push(buf) // the queue consumer releases later
	return nil
}

func discarded(p *fabric.Pool) {
	_, _ = p.Get(64) // want "fabric.Pool.Get result is discarded"
}

func leakOnContinue(p *fabric.Pool, n int) {
	for i := 0; i < n; i++ {
		buf, err := p.Get(64) // want "leaks when the loop continues"
		if err != nil {
			return
		}
		if i == 0 {
			continue
		}
		buf.Release()
	}
}
