// Package hw is a fixture standing in for the NIC fragment pool,
// whose release is a put function taking the value, not a method on
// it.
package hw

type NIC struct{ fragFree []*frag }

type frag struct{}

type Message struct{}

func (n *NIC) getFrag(m *Message, idx, size int) *frag { return &frag{} }

func (n *NIC) putFrag(f *frag) { n.fragFree = append(n.fragFree, f) }

func balanced(n *NIC, m *Message) {
	f := n.getFrag(m, 0, 1)
	n.putFrag(f)
}

func leak(n *NIC, m *Message, cond bool) {
	f := n.getFrag(m, 0, 1) // want "NIC.getFrag is not released on every path"
	if cond {
		return
	}
	n.putFrag(f)
}
