// Package fabric is a stand-in for the real buffer pool: the
// analyzer matches acquisition methods by package and type name.
package fabric

// Pool stands in for the fabric buffer pool.
type Pool struct{}

// Buffer stands in for a pooled buffer.
type Buffer struct{}

// Get stands in for the pooled acquisition.
func (p *Pool) Get(n int) (*Buffer, error) { return &Buffer{}, nil }

// Release stands in for the pooled release.
func (b *Buffer) Release() {}

// VA stands in for a plain read on the buffer.
func (b *Buffer) VA() uint64 { return 0 }
