// Package a exercises the //allocfree construct checks.
package a

import "fmt"

type rec struct{ n int }

// allocfree
func extendIdiom(dst []byte, n int) []byte {
	dst = append(dst, make([]byte, n)...) // compiler-recognized extension: exempt
	return dst
}

// allocfree
func badMake(n int) []byte {
	buf := make([]byte, n) // want "make in //allocfree function allocates"
	return buf
}

// allocfree
func badNew() *rec {
	return new(rec) // want "new in //allocfree function allocates"
}

// allocfree
func badFmt(err error) string {
	return fmt.Sprintf("x: %v", err) // want "fmt.Sprintf in //allocfree function"
}

// allocfree
func badClosure() func() {
	return func() {} // want "closure in //allocfree function"
}

// allocfree
func badComposite() *rec {
	return &rec{} // want "composite literal in //allocfree function allocates"
}

// allocfree
func badConcat(a, b string) string {
	return a + b // want "string concatenation in //allocfree function"
}

// allocfree
func badConv(b []byte) string {
	return string(b) // want "conversion in //allocfree function copies"
}

// allocfree
func badBox(r rec) any {
	return r // want "interface boxing in //allocfree function"
}

// allocfree
func pointerBoxOK(r *rec) any {
	return r // pointer into interface: no copy of the record
}

// allocfree
func baselined() *rec {
	//analyze:allow allocfree cold path, demonstrated baseline
	return &rec{}
}

func unannotated(n int) []byte {
	return make([]byte, n)
}
