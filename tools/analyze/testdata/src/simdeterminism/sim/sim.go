// Package sim is a fixture: its name places it in the deterministic
// package set, and it declares the Proc/Chan marker types locally.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Proc marks simulated work when passed to a call.
type Proc struct{}

// Chan stands in for the cooperative channel.
type Chan struct{}

// Send stands in for the cooperative send.
func (c *Chan) Send(v int) {}

func work(p *Proc, k int) {}

func clocks() {
	_ = time.Now()          // want "time.Now reads the host clock"
	time.Sleep(time.Second) // want "time.Sleep reads the host clock"
}

func randoms() int {
	r := rand.New(rand.NewSource(7)) // seeded stream: fine
	return r.Intn(4) + rand.Intn(4)  // want "global rand.Intn draws from shared non-seeded state"
}

func mapWork(p *Proc, m map[int]int) {
	for k := range m {
		work(p, k) // want "simulated work inside map iteration"
	}
}

func mapSend(ch *Chan, m map[int]int) {
	for k := range m {
		ch.Send(k) // want "channel send inside map iteration"
	}
}

func mapAppendUnsorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys under map iteration without sorting"
	}
	return keys
}

func mapAppendSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func mapDeleteOnly(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

func baselined() {
	//analyze:allow simdeterminism fixture demonstrates the baseline syntax
	_ = time.Now()
}
