// Package sim is a stand-in declaring the lock-shaped primitives the
// lockorder analyzer recognizes.
package sim

// Proc stands in for the cooperative process handle.
type Proc struct{}

// Resource stands in for the capacity-1 resource used as a lock.
type Resource struct{}

// Acquire stands in for the blocking lock acquisition.
func (r *Resource) Acquire(p *Proc) {}

// Release stands in for the lock release.
func (r *Resource) Release() {}

// Chan stands in for the cooperative channel / token pool.
type Chan struct{}

// Send stands in for the cooperative send.
func (c *Chan) Send(v int) {}

// Recv stands in for the cooperative receive.
func (c *Chan) Recv(p *Proc) int { return 0 }
