// Package a exercises the declared lock order, re-entry and
// send-under-lock checks.
package a

import "fixture/sim"

type Client struct {
	lock *sim.Resource
}

type Session struct {
	free *sim.Chan
}

//analyze:lockorder Session.free < Client.lock

func good(p *sim.Proc, s *Session, c *Client) {
	tok := s.free.Recv(p)
	c.lock.Acquire(p)
	c.lock.Release()
	s.free.Send(tok)
}

func badOrder(p *sim.Proc, s *Session, c *Client) {
	c.lock.Acquire(p)
	tok := s.free.Recv(p) // want "acquiring Session.free while holding Client.lock"
	s.free.Send(tok)
	c.lock.Release()
}

func badOrderDeferred(p *sim.Proc, s *Session, c *Client) {
	c.lock.Acquire(p)
	defer c.lock.Release()
	tok := s.free.Recv(p) // want "acquiring Session.free while holding Client.lock"
	s.free.Send(tok)
}

func reenter(p *sim.Proc, c *Client) {
	c.lock.Acquire(p)
	c.lock.Acquire(p) // want "re-entrant acquisition of Client.lock"
	c.lock.Release()
}

func sendUnderLock(p *sim.Proc, c *Client, ch *sim.Chan) {
	c.lock.Acquire(p)
	ch.Send(1) // want "sim.Chan send while holding Client.lock"
	c.lock.Release()
}

func rawSendUnderLock(p *sim.Proc, c *Client, ch chan int) {
	c.lock.Acquire(p)
	ch <- 1 // want "channel send while holding Client.lock"
	c.lock.Release()
}

func takesSlot(p *sim.Proc, s *Session) {
	tok := s.free.Recv(p)
	s.free.Send(tok)
}

func viaCallee(p *sim.Proc, s *Session, c *Client) {
	c.lock.Acquire(p)
	takesSlot(p, s) // want "takesSlot acquires Session.free while Client.lock is held here"
	c.lock.Release()
}

func calleeWithoutLock(p *sim.Proc, s *Session) {
	takesSlot(p, s)
}
