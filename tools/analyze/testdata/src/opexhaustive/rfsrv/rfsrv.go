// Package rfsrv is a fixture: the protocol package must declare its
// dispatch surfaces, so their absence here is itself a finding.
package rfsrv // want "declares no //analyze:dispatch ops surface" "declares no //analyze:dispatch statuses surface"

type Op uint8

const (
	OpRead Op = iota
)
