// Package a exercises the dispatch-surface exhaustiveness checks.
package a

type Op uint8

type St int32

const (
	OpRead Op = iota
	OpWrite
	OpSync
)

const (
	StOK St = iota
	StBad
)

//analyze:dispatch ops
var incomplete = map[Op]string{ // want "ops surface does not handle OpSync"
	OpRead: "read", OpWrite: "write",
}

//analyze:dispatch ops -OpSync
var excluded = map[Op]string{
	OpRead: "read", OpWrite: "write",
}

//analyze:dispatch ops -OpWrite
var stale = map[Op]string{ // want "excludes -OpWrite but covers it" "does not handle OpSync"
	OpRead: "read", OpWrite: "write",
}

func serveMeta(op Op) {
	//analyze:dispatch ops group=serve
	switch op {
	case OpRead:
	case OpSync:
	}
}

func serveData(op Op) {
	//analyze:dispatch ops group=serve
	switch op {
	case OpWrite:
	}
}

func errOf(st St) int {
	//analyze:dispatch statuses
	switch st { // want "statuses surface does not handle StBad"
	case StOK:
		return 0
	}
	return 1
}

func unannotated(op Op) {
	switch op {
	case OpRead:
	}
}
