package main

// simdeterminism: sim-driven packages must be bit-deterministic so a
// torture failure replays from its seed alone (DESIGN.md §12). Three
// classes of construct silently break that:
//
//   - wall-clock reads and host sleeps (time.Now, time.Sleep, ...):
//     virtual time comes from the sim engine, never the host;
//   - the global math/rand stream (rand.Intn, ...): shared state
//     seeded from outside the run — only seeded rand.New streams
//     derive from the run's seed;
//   - map iteration feeding order-sensitive consumers: Go randomizes
//     range-over-map order, so anything it feeds — simulated work,
//     channel sends, collected slices — reorders between runs unless
//     the keys are sorted first.
//
// The map rule is necessarily heuristic; it flags a map-range body
// that (a) performs simulated work (calls anything taking *sim.Proc —
// the repo's marker for schedule-relevant activity), (b) sends on a
// channel, or (c) appends to a slice declared outside the loop that
// is never passed to sort/slices sorting in the same function.

import (
	"go/ast"
	"go/types"
)

// simPackages names the packages whose execution must be
// bit-deterministic under a fixed seed (matched by package name so
// fixtures can stand in for the real tree).
var simPackages = map[string]bool{
	"sim": true, "hw": true, "fabric": true,
	"rfsrv": true, "torture": true, "memfs": true,
}

// forbiddenTimeFuncs are the package time functions that read the
// host clock or block on it.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand constructors that build seeded
// streams — the only package-level entry points a deterministic run
// may use.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

var simDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global math/rand and order-sensitive map iteration in sim-driven packages",
	Run:  runSimDeterminism,
}

func runSimDeterminism(p *Pass) {
	if !simPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkDeterministicCall(n)
			case *ast.FuncDecl:
				if n.Body != nil {
					p.checkMapRanges(n)
				}
				return true
			}
			return true
		})
	}
}

// checkDeterministicCall flags wall-clock reads and global math/rand
// use.
func (p *Pass) checkDeterministicCall(call *ast.CallExpr) {
	if name, ok := p.isPkgCall(call, "time"); ok && forbiddenTimeFuncs[name] {
		p.report(call.Pos(), "time.%s reads the host clock; sim-driven code must use the engine's virtual time", name)
		return
	}
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		if name, ok := p.isPkgCall(call, path); ok && !allowedRandFuncs[name] {
			p.report(call.Pos(), "global rand.%s draws from shared non-seeded state; use a seeded rand.New stream derived from the run's seed", name)
			return
		}
	}
}

// checkMapRanges inspects every range-over-map loop in one function
// for order-sensitive consumption of the iteration.
func (p *Pass) checkMapRanges(fd *ast.FuncDecl) {
	sorted := p.sortedSlices(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			return true
		}
		p.checkMapRangeBody(fd, rng, sorted)
		return true
	})
}

// sortedSlices collects the objects of every slice passed to a
// sort/slices sorting function anywhere in the function — appending
// map keys to one of these and sorting before use is the blessed
// deterministic-iteration idiom.
func (p *Pass) sortedSlices(fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sortCall := false
		if _, ok := p.isPkgCall(call, "sort"); ok {
			sortCall = true
		}
		if _, ok := p.isPkgCall(call, "slices"); ok {
			sortCall = true
		}
		if !sortCall || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// checkMapRangeBody flags the order-sensitive constructs inside one
// map-range body.
func (p *Pass) checkMapRangeBody(fd *ast.FuncDecl, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.report(n.Pos(), "channel send inside map iteration: receiver observes randomized map order; iterate sorted keys instead")
		case *ast.CallExpr:
			if p.isChanSend(n) {
				p.report(n.Pos(), "channel send inside map iteration: receiver observes randomized map order; iterate sorted keys instead")
				return true
			}
			if p.doesSimWork(n) {
				p.report(n.Pos(), "simulated work inside map iteration: the event schedule absorbs randomized map order and seed replay diverges; iterate sorted keys instead")
				return true
			}
		case *ast.AssignStmt:
			p.checkRangeAppend(n, rng, sorted)
		}
		return true
	})
}

// isChanSend reports whether call is a Send method call on a
// sim.Chan (the repo's cooperative channel).
func (p *Pass) isChanSend(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	return ok && typeIs(tv.Type, "sim", "Chan")
}

// doesSimWork reports whether call passes a *sim.Proc — the
// repository-wide marker that a call advances virtual time or
// produces wire traffic, making its invocation order part of the
// event schedule.
func (p *Pass) doesSimWork(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && typeIs(tv.Type, "sim", "Proc") {
			return true
		}
	}
	return false
}

// checkRangeAppend flags `outer = append(outer, ...)` inside a
// map-range loop when outer is declared outside the loop and never
// sorted in the enclosing function.
func (p *Pass) checkRangeAppend(as *ast.AssignStmt, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if i >= len(as.Lhs) && len(as.Lhs) != 1 {
			continue
		}
		lhs := as.Lhs[0]
		if len(as.Lhs) > i {
			lhs = as.Lhs[i]
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			continue
		}
		// Declared inside the loop body: the collection is per-entry
		// scratch, not an ordered product of the iteration.
		if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if sorted[obj] {
			continue
		}
		p.report(as.Pos(), "append to %s under map iteration without sorting it afterwards: the slice order is randomized per run; sort it (or the map keys) before use", id.Name)
	}
}
