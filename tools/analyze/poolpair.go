package main

// poolpair: every pooled acquisition must reach its release on every
// path out of the acquiring function — the static complement of
// fabric.Pool.CheckLeaks, which only catches unbalanced Get/Release
// on paths a test happens to drive.
//
// Tracked pairs (matched by package and type NAME so fixtures can
// stand in for the real packages):
//
//	fabric.Pool.Get       -> Buffer.Release() (or defer)
//	hw.NIC.getFrag        -> NIC.putFrag(f)
//	rfsrv.Server.getWork  -> Server.putWork(w)
//
// Ownership transfer counts as a release: storing the value into a
// field, slice, map or channel, passing it to any function, or
// returning it hands responsibility to the new holder (the dispatch
// loop that stores a buffer on a work record is fine — the worker
// releases it). What the analyzer rejects is a path where the value
// is still owned locally and control leaves the function (or the
// acquiring loop iteration) without releasing it — exactly the
// error-return leaks CheckLeaks only finds under fault injection.
//
// Functions containing goto are skipped (no findings either way):
// the path walk does not model arbitrary jumps.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolAcq describes one pooled-acquisition method.
type poolAcq struct {
	pkg, typ, method string
	// resultIdx is the index of the pooled value among the results.
	resultIdx int
	// releaseMethods are methods ON the pooled value that release it.
	releaseMethods map[string]bool
	// releaseFuncs are functions/methods that release a pooled value
	// passed as an argument.
	releaseFuncs map[string]bool
	what         string
}

var poolAcqs = []poolAcq{
	{
		pkg: "fabric", typ: "Pool", method: "Get", resultIdx: 0,
		releaseMethods: map[string]bool{"Release": true},
		what:           "fabric.Pool.Get",
	},
	{
		pkg: "hw", typ: "NIC", method: "getFrag", resultIdx: 0,
		releaseFuncs: map[string]bool{"putFrag": true},
		what:         "NIC.getFrag",
	},
	{
		pkg: "rfsrv", typ: "Server", method: "getWork", resultIdx: 0,
		releaseFuncs: map[string]bool{"putWork": true},
		what:         "Server.getWork",
	},
}

var poolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled acquisitions (fabric.Pool.Get, NIC fragments, server work records) must release on all paths",
	Run:  runPoolPair,
}

func runPoolPair(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasGoto(fd.Body) {
				continue
			}
			p.checkPoolFunc(fd)
		}
	}
}

// hasGoto reports whether the function body contains a goto.
func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == "goto" {
			found = true
		}
		return !found
	})
	return found
}

// checkPoolFunc finds every tracked acquisition in fd and walks the
// function once per acquisition.
func (p *Pass) checkPoolFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		acq := p.matchAcq(call)
		if acq == nil {
			return true
		}
		if acq.resultIdx >= len(as.Lhs) {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[acq.resultIdx]).(*ast.Ident)
		if !ok || id.Name == "_" {
			// The pooled value is dropped or lands somewhere non-local;
			// a dropped handle can never be released.
			p.report(as.Pos(), "%s result is discarded: the pooled value can never be released", acq.what)
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		c := &poolChecker{p: p, fd: fd, acq: acq, acqStmt: as, obj: obj}
		// If the acquisition also assigns an error variable, remember
		// it: on the `err != nil` branch of the guard directly tied to
		// this acquisition, the pooled value is nil and cannot leak.
		for i, lhs := range as.Lhs {
			if i == acq.resultIdx {
				continue
			}
			eid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || eid.Name == "_" {
				continue
			}
			eobj := p.Info.Defs[eid]
			if eobj == nil {
				eobj = p.Info.Uses[eid]
			}
			if eobj != nil && eobj.Type() != nil && eobj.Type().String() == "error" {
				c.errObj = eobj
			}
		}
		c.run()
		return true
	})
}

// matchAcq resolves call against the acquisition table.
func (p *Pass) matchAcq(call *ast.CallExpr) *poolAcq {
	f := p.callee(call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	for i := range poolAcqs {
		a := &poolAcqs[i]
		if f.Name() == a.method && typeIs(sig.Recv().Type(), a.pkg, a.typ) {
			return a
		}
	}
	return nil
}

// poolChecker walks one function for one acquisition.
type poolChecker struct {
	p       *Pass
	fd      *ast.FuncDecl
	acq     *poolAcq
	acqStmt ast.Stmt
	obj     types.Object
	errObj  types.Object // error result of the acquisition, if any

	reported bool
}

// pstate is the per-path tracking state.
type pstate struct {
	live     bool // value acquired and still owned locally
	deferred bool // a deferred release covers every later exit
	errOK    bool // errObj still holds the acquisition's error result
}

// merge combines two branch outcomes: the merged path still owns the
// value if either branch does, and is defer-covered only if every
// branch that still owns the value is.
func merge(a, b pstate) pstate {
	return pstate{
		live:     a.live || b.live,
		deferred: (!a.live || a.deferred) && (!b.live || b.deferred),
		errOK:    a.errOK && b.errOK,
	}
}

func (c *poolChecker) run() {
	c.evalBlock(c.fd.Body.List, pstate{})
}

// leak reports one leaking path (at most one finding per
// acquisition — the first path found).
func (c *poolChecker) leak(pos ast.Node, how string) {
	if c.reported {
		return
	}
	c.reported = true
	c.p.report(c.acqStmt.Pos(), "%s is not released on every path: %s at %s",
		c.acq.what, how, c.p.Fset.Position(pos.Pos()))
}

// evalBlock runs a statement list, returning the fall-through state
// and whether control diverted (return/panic/branch) before the end.
func (c *poolChecker) evalBlock(stmts []ast.Stmt, st pstate) (pstate, bool) {
	for _, s := range stmts {
		var term bool
		st, term = c.evalStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *poolChecker) evalStmt(s ast.Stmt, st pstate) (pstate, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == c.acqStmt {
			st.live = true
			st.errOK = c.errObj != nil
			return st, false
		}
		// Any other assignment to the error variable (a later Get
		// reusing err, say) ends the guard's connection to this
		// acquisition.
		if st.errOK {
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && c.resolves(id, c.errObj) {
					st.errOK = false
				}
			}
		}
		// Overwriting the variable or aliasing it elsewhere transfers
		// or loses ownership in ways the walk does not model; treat
		// any appearance as ownership transfer.
		return c.scanExprs(s, st), false
	case *ast.ExprStmt:
		return c.evalExpr(s.X, st), false
	case *ast.DeferStmt:
		if st.live && c.isRelease(s.Call) {
			st.deferred = true
			return st, false
		}
		return c.scanExprs(s, st), false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.mentions(r) {
				st.live = false // returned: caller owns it now
			}
		}
		if st.live && !st.deferred {
			c.leak(s, "leaks at this return")
		}
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.evalStmt(s.Init, st)
		}
		st = c.evalExpr(s.Cond, st)
		// The error guard of this acquisition: on the branch where
		// err != nil the pooled value is nil, so nothing can leak
		// there.
		thenIn, elseIn := st, st
		if st.live && st.errOK {
			switch c.errGuard(s.Cond) {
			case errNonNil:
				thenIn.live = false
			case errIsNil:
				elseIn.live = false
			}
		}
		thenSt, thenTerm := c.evalBlock(s.Body.List, thenIn)
		elseSt, elseTerm := elseIn, false
		if s.Else != nil {
			elseSt, elseTerm = c.evalStmt(s.Else, elseIn)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return merge(thenSt, elseSt), false
		}
	case *ast.BlockStmt:
		return c.evalBlock(s.List, st)
	case *ast.ForStmt:
		return c.evalLoop(s, s.Body, st, s.Cond == nil)
	case *ast.RangeStmt:
		return c.evalLoop(s, s.Body, st, false)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.evalSwitch(s, st)
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "continue":
			if st.live && !st.deferred && c.inStmt(c.enclosingLoopBody(s)) {
				c.leak(s, "leaks when the loop continues")
			}
			return st, true
		case "break":
			// The state escapes to after the loop; handled
			// conservatively by the loop merge below.
			return st, true
		case "fallthrough":
			return st, false
		}
		return st, true
	case *ast.LabeledStmt:
		return c.evalStmt(s.Stmt, st)
	case *ast.GoStmt:
		return c.scanExprs(s, st), false
	case *ast.SendStmt:
		return c.scanExprs(s, st), false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return c.scanExprs(s, st), false
	default:
		return c.scanExprs(s, st), false
	}
}

// evalLoop processes a for/range body. A value acquired inside the
// body must be dead again by the end of each iteration (the next
// iteration re-acquires over it); a value acquired before the loop
// stays in whatever merged state body and zero-iteration entry
// produce.
func (c *poolChecker) evalLoop(loop ast.Stmt, body *ast.BlockStmt, st pstate, infinite bool) (pstate, bool) {
	acqInside := c.inRange(loop.Pos(), loop.End())
	bodySt, bodyTerm := c.evalBlock(body.List, st)
	if acqInside && bodySt.live && !bodySt.deferred && !bodyTerm {
		c.leak(body, "still unreleased at the end of a loop iteration that re-acquires")
	}
	if infinite {
		// for{}: fall-through only via break; assume the breaker's
		// state (approximated by the body state).
		return merge(st, bodySt), false
	}
	return merge(st, bodySt), false
}

// evalSwitch merges all case bodies of a switch/select.
func (c *poolChecker) evalSwitch(s ast.Stmt, st pstate) (pstate, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.evalStmt(s.Init, st)
		}
		if s.Tag != nil {
			st = c.evalExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := pstate{}
	any, allTerm := false, true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		cs, term := c.evalBlock(stmts, st)
		if !term {
			allTerm = false
			if any {
				out = merge(out, cs)
			} else {
				out, any = cs, true
			}
		}
	}
	if !hasDefault {
		// The switch may not match any case.
		if any {
			out = merge(out, st)
		} else {
			out, any = st, true
		}
		allTerm = false
	}
	if !any && allTerm {
		return st, true
	}
	return out, false
}

// evalExpr interprets one expression statement's effect on the
// tracked value: release, ownership transfer, or nothing.
func (c *poolChecker) evalExpr(e ast.Expr, st pstate) pstate {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if ok && st.live && c.isRelease(call) {
		st.live = false
		return st
	}
	return c.scanNode(e, st)
}

// isRelease reports whether call releases the tracked value: a
// release method ON it, or a release function taking it.
func (c *poolChecker) isRelease(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.isTracked(base) && c.acq.releaseMethods[sel.Sel.Name] {
			return true
		}
		if c.acq.releaseFuncs[sel.Sel.Name] {
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && c.isTracked(id) {
					return true
				}
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && c.acq.releaseFuncs[id.Name] {
		for _, arg := range call.Args {
			if a, ok := ast.Unparen(arg).(*ast.Ident); ok && c.isTracked(a) {
				return true
			}
		}
	}
	return false
}

// scanExprs applies scanNode to a whole statement.
func (c *poolChecker) scanExprs(s ast.Stmt, st pstate) pstate {
	return c.scanNode(s, st)
}

// scanNode looks for uses of the tracked value that transfer
// ownership: passed as a call argument (other than to a release),
// stored anywhere, captured by a closure, sent on a channel, or
// address-taken. Method calls and field reads on the value itself do
// not transfer.
func (c *poolChecker) scanNode(n ast.Node, st pstate) pstate {
	if !st.live {
		return st
	}
	escaped := false
	ast.Inspect(n, func(x ast.Node) bool {
		if escaped {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if c.isRelease(x) {
				// A conditional release inside a larger construct:
				// treat as done for this scan.
				escaped = true
				return false
			}
			for _, arg := range x.Args {
				if c.mentionsDirect(arg) {
					escaped = true
					return false
				}
			}
			// Recurse into receiver expressions and nested calls but
			// not into args already vetted.
			return true
		case *ast.SelectorExpr:
			// v.field / v.Method: plain use, skip the base ident so
			// the Ident case below does not misfire.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && c.isTracked(id) {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" && c.mentionsDirect(x.X) {
				escaped = true
				return false
			}
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt, *ast.FuncLit:
			if c.mentions(x) {
				escaped = true
				return false
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if c.mentionsDirect(r) {
					escaped = true
					return false
				}
			}
		case *ast.BinaryExpr:
			// Comparisons and arithmetic never transfer ownership.
			return true
		}
		return true
	})
	if escaped {
		st.live = false
	}
	return st
}

// mentionsDirect reports whether e IS the tracked identifier (after
// removing parens).
func (c *poolChecker) mentionsDirect(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.isTracked(id)
}

// mentions reports whether the tracked identifier occurs anywhere
// under n.
func (c *poolChecker) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && c.isTracked(id) {
			found = true
		}
		return !found
	})
	return found
}

// isTracked reports whether id resolves to the tracked object.
func (c *poolChecker) isTracked(id *ast.Ident) bool {
	return c.resolves(id, c.obj)
}

// resolves reports whether id denotes obj.
func (c *poolChecker) resolves(id *ast.Ident, obj types.Object) bool {
	if obj == nil {
		return false
	}
	got := c.p.Info.Uses[id]
	if got == nil {
		got = c.p.Info.Defs[id]
	}
	return got == obj
}

// Guard polarities for errGuard.
const (
	errUnknown = iota
	errNonNil  // condition is `err != nil`
	errIsNil   // condition is `err == nil`
)

// errGuard classifies cond as a nil check on the acquisition's error
// variable.
func (c *poolChecker) errGuard(cond ast.Expr) int {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return errUnknown
	}
	op := be.Op.String()
	if op != "!=" && op != "==" {
		return errUnknown
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	isErr := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && c.resolves(id, c.errObj)
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := c.p.Info.Types[e]
		return ok && tv.IsNil()
	}
	if (isErr(x) && isNil(y)) || (isErr(y) && isNil(x)) {
		if op == "!=" {
			return errNonNil
		}
		return errIsNil
	}
	return errUnknown
}

// inStmt reports whether the acquisition lies inside stmt.
func (c *poolChecker) inStmt(s ast.Stmt) bool {
	if s == nil {
		return false
	}
	return c.inRange(s.Pos(), s.End())
}

// inRange reports whether the acquisition lies inside [pos, end].
func (c *poolChecker) inRange(pos, end token.Pos) bool {
	return pos <= c.acqStmt.Pos() && c.acqStmt.End() <= end
}

// enclosingLoopBody finds the innermost for/range statement
// containing n within the checked function.
func (c *poolChecker) enclosingLoopBody(n ast.Node) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(c.fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt:
			if x.Pos() <= n.Pos() && n.End() <= x.End() {
				best = x
			}
		case *ast.RangeStmt:
			if x.Pos() <= n.Pos() && n.End() <= x.End() {
				best = x
			}
		}
		return true
	})
	return best
}
