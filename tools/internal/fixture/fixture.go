// Package fixture is the expected-diagnostic harness shared by the
// tools/analyze and tools/doccheck tests. Fixture source files mark
// the lines where a diagnostic must appear with a trailing comment:
//
//	buf := make([]byte, n) // want "make in //allocfree function"
//
// Each quoted string is a substring that must occur in the message of
// a diagnostic reported on that line; several strings demand several
// diagnostics. Check fails the test for every missing expectation and
// for every diagnostic no expectation covers.
package fixture

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Diag is one diagnostic produced by the tool under test.
type Diag struct {
	File string // absolute path
	Line int
	Msg  string
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file   string
	line   int
	substr string
	met    bool
}

// Check matches got against the `// want` comments of every .go file
// under dir (recursively, fixture stand-in packages included — they
// simply carry no expectations).
func Check(t testing.TB, dir string, got []Diag) {
	t.Helper()
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parsing fixture expectations: %v", err)
	}
	for _, d := range got {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.File && w.line == d.Line && strings.Contains(d.Msg, w.substr) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.File, d.Line, d.Msg)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("missing diagnostic at %s:%d: want message containing %q", w.file, w.line, w.substr)
		}
	}
}

// parseWants scans dir for `// want "..." ["..."]...` comments.
func parseWants(dir string) ([]*want, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, substr := range parseQuoted(rest) {
				wants = append(wants, &want{file: path, line: i + 1, substr: substr})
			}
		}
		return nil
	})
	return wants, err
}

// parseQuoted extracts the double-quoted Go string literals from s.
func parseQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := start + 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		if q, err := strconv.Unquote(s[start : end+1]); err == nil {
			out = append(out, q)
		}
		s = s[end+1:]
	}
}
