package main

// Fixture tests for the godoc gate, sharing the expected-diagnostic
// harness with tools/analyze. Value specs cannot carry `// want`
// comments (a trailing comment on a spec IS documentation), so the
// value and package-comment cases are asserted directly.

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/internal/fixture"
)

// runDirFixture checks one testdata package against its want
// comments.
func runDirFixture(t *testing.T, dir string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	finds, err := checkDir(abs)
	if err != nil {
		t.Fatalf("checkDir(%s): %v", dir, err)
	}
	var got []fixture.Diag
	for _, f := range finds {
		got = append(got, fixture.Diag{File: f.file, Line: f.line, Msg: f.msg})
	}
	fixture.Check(t, abs, got)
}

func TestDocumentedClean(t *testing.T) { runDirFixture(t, "documented") }

func TestUndocumented(t *testing.T) { runDirFixture(t, "undocumented") }

// TestPackageCommentAndValues covers the two finding shapes the
// fixture comments cannot express: a missing package comment
// (reported against the directory, no line) and an undocumented
// exported value (a trailing comment would document it).
func TestPackageCommentAndValues(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("testdata", "nodoc"))
	if err != nil {
		t.Fatal(err)
	}
	finds, err := checkDir(abs)
	if err != nil {
		t.Fatalf("checkDir: %v", err)
	}
	if len(finds) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(finds), finds)
	}
	if finds[0].file != abs || finds[0].line != 0 || !strings.Contains(finds[0].msg, "no package comment") {
		t.Errorf("finding 0 = %v, want package-comment finding against the directory", finds[0])
	}
	if !strings.Contains(finds[1].msg, "exported value Undocumented has no doc comment") {
		t.Errorf("finding 1 = %v, want undocumented value finding", finds[1])
	}
}
