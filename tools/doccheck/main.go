// Command doccheck enforces the repository's godoc discipline: every
// exported identifier in the packages named on the command line must
// carry a doc comment, and every package must have a package comment.
// It is the missing-doc gate run by the CI docs job (the stand-in for
// `revive -rule exported`, implemented with the standard library so the
// container needs no extra tools).
//
// Usage:
//
//	go run ./tools/doccheck ./internal/rfsrv ./internal/fabric
//
// Exit status is non-zero if any exported identifier is undocumented;
// each offender is printed as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir>...")
		os.Exit(2)
	}
	bad, broken := 0, false
	for _, dir := range os.Args[1:] {
		finds, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			broken = true
		}
		for _, f := range finds {
			fmt.Println(f)
		}
		bad += len(finds)
	}
	if broken {
		os.Exit(2) // parse/usage failure, not an audit finding
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// finding is one undocumented exported identifier, printable as
// file:line: message.
type finding struct {
	file string
	line int
	msg  string
}

func (f finding) String() string {
	if f.line == 0 {
		return fmt.Sprintf("%s: %s", f.file, f.msg)
	}
	return fmt.Sprintf("%s:%d: %s", f.file, f.line, f.msg)
}

// checkDir parses one package directory (tests excluded — their helpers
// are not API) and returns the undocumented exported declarations. A
// parse failure is returned as an error, distinct from audit findings.
func checkDir(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var finds []finding
	for _, pkg := range pkgs {
		if !hasPackageComment(pkg) {
			finds = append(finds, finding{file: dir,
				msg: fmt.Sprintf("package %s has no package comment", pkg.Name)})
		}
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		// Deterministic output order.
		sort.Strings(files)
		for _, name := range files {
			finds = append(finds, checkFile(fset, pkg.Files[name])...)
		}
	}
	return finds, nil
}

// hasPackageComment reports whether any file of the package carries a
// package doc comment.
func hasPackageComment(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(f.Doc.List) > 0 {
			return true
		}
	}
	return false
}

// checkFile collects undocumented exported top-level declarations of one
// file: funcs, methods (on exported or unexported receivers alike —
// an exported method is API either way through interfaces), types, and
// const/var specs.
func checkFile(fset *token.FileSet, f *ast.File) []finding {
	var finds []finding
	complain := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		finds = append(finds, finding{file: p.Filename, line: p.Line,
			msg: fmt.Sprintf("exported %s %s has no doc comment", what, name)})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				name := d.Name.Name
				if d.Recv != nil {
					name = recvName(d.Recv) + "." + name
				}
				complain(d.Pos(), "function", name)
			}
		case *ast.GenDecl:
			// A doc comment on the grouped decl covers all its specs
			// (the `const ( ... )` block idiom).
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						complain(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							complain(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return finds
}

// recvName renders a method receiver's type name.
func recvName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return "?"
	}
	t := fl.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}
