// Package undocumented has a package comment, but not all of its
// exported members carry docs.
package undocumented

// Documented is documented.
func Documented() {}

func Exported() {} // want "exported function Exported has no doc comment"

type T struct{} // want "exported type T has no doc comment"

func (t *T) Method() {} // want "exported function T.Method has no doc comment"

func unexported() {}
