package nodoc

var Undocumented = 1
