// Package documented is fully documented: doccheck must report
// nothing here.
package documented

// Exported is documented.
func Exported() {}

// T is documented.
type T struct{}

// Method is documented.
func (t *T) Method() {}

// Grouped constants: the block doc covers every spec.
const (
	A = 1
	B = 2
)

// V is documented.
var V = 3

func unexported() {}
